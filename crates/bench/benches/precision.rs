//! Perf-regression harness for the typestate-tape / mixed-precision work
//! (PR 9).
//!
//! Not a criterion bench: this harness emits a machine-readable JSON file
//! (`BENCH_pr9.json` by default) with median timings so CI can diff runs.
//!
//! Usage (via `scripts/bench.sh` or directly):
//!
//! ```text
//! cargo bench --bench precision -- [--smoke] [--out PATH]
//! ```
//!
//! Two claims are measured and gated:
//!
//! 1. **Inference precision** — a forward pass through the FNO surrogate
//!    with `NoneTape` in f32 (`infer_f32`) must be measurably faster than
//!    the taped f64 training forward (`forward` + `OwnedTape`), because it
//!    records no tape nodes and moves half the bytes. The f64 `infer` path
//!    is reported alongside to split the tape cost from the dtype cost.
//! 2. **Mixed-precision factorization** — an f32 banded LU plus f64
//!    iterative refinement must reach the f64 direct solve's accuracy
//!    (relative residual <= `DEFAULT_REFINE_TOL`) and the combined
//!    factorize+solve must beat the full f64 LU on Helmholtz-shaped
//!    systems at device-zoo sizes.
//!
//! Measurements interleave the compared variants rep by rep and gate on
//! the median of paired per-rep differences, so bursty container noise
//! hits both sides of each pair and cancels.

use maps_linalg::{BandedMatrix, Complex64, MixedBandedLu, DEFAULT_RHS_BLOCK};
use maps_nn::{Fno, FnoConfig, Model};
use maps_tensor::{Params, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Mode {
    smoke: bool,
    out: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr9.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out" => {
                mode.out = args.next().expect("--out needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn median_diff(mut diffs: Vec<i128>) -> i128 {
    assert!(!diffs.is_empty());
    diffs.sort_unstable();
    diffs[diffs.len() / 2]
}

/// Helmholtz-shaped banded test system: the 5-point stencil sparsity that
/// `FdfdSolver` assembles, with a lossy diagonal so both the f64 LU and the
/// f32 LU are comfortably non-singular.
fn helmholtz_like(n: usize, bw: usize) -> BandedMatrix {
    let mut a = BandedMatrix::zeros(n, bw, bw);
    for i in 0..n {
        a.set(i, i, Complex64::new(4.0, 0.4));
        if i >= 1 {
            a.set(i, i - 1, Complex64::from_re(-1.0));
        }
        if i >= bw {
            a.set(i, i - bw, Complex64::from_re(-1.0));
        }
        if i + 1 < n {
            a.set(i, i + 1, Complex64::from_re(-1.0));
        }
        if i + bw < n {
            a.set(i, i + bw, Complex64::from_re(-1.0));
        }
    }
    a
}

fn main() {
    let mode = parse_args();
    let reps = if mode.smoke { 7 } else { 21 };
    let inner = if mode.smoke { 2 } else { 5 };

    eprintln!(
        "precision: {reps} reps x {inner} inner, mode={}",
        if mode.smoke { "smoke" } else { "full" }
    );

    // --- Claim 1: f32 tape-free inference vs taped f64 forward -----------
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 12,
            modes: 6,
            depth: 3,
        },
    );
    let batch = 1usize;
    let x = Tensor::zeros(&[batch, 4, 40, 40]);
    let params32 = params.cast::<f32>();
    let x32 = x.cast::<f32>();

    let time_taped = |inner: usize| {
        let t = Instant::now();
        for _ in 0..inner {
            let y = model.forward(&params, x.trace());
            std::hint::black_box(y.no_tape().len());
        }
        t.elapsed().as_nanos() / inner as u128
    };
    let time_infer64 = |inner: usize| {
        let t = Instant::now();
        for _ in 0..inner {
            std::hint::black_box(model.infer(&params, x.clone()).len());
        }
        t.elapsed().as_nanos() / inner as u128
    };
    let time_infer32 = |inner: usize| {
        let t = Instant::now();
        for _ in 0..inner {
            std::hint::black_box(model.infer_f32(&params32, x32.clone()).len());
        }
        t.elapsed().as_nanos() / inner as u128
    };

    let mut taped_samples = Vec::with_capacity(reps);
    let mut infer64_samples = Vec::with_capacity(reps);
    let mut infer32_samples = Vec::with_capacity(reps);
    let mut taped_vs_f32 = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate the execution order between reps so slow monotonic
        // drift (thermal throttling, a noisy neighbor ramping up) cannot
        // systematically favor whichever variant runs first.
        let (taped, infer64, infer32) = match rep % 3 {
            0 => {
                let a = time_taped(inner);
                let b = time_infer64(inner);
                let c = time_infer32(inner);
                (a, b, c)
            }
            1 => {
                let c = time_infer32(inner);
                let a = time_taped(inner);
                let b = time_infer64(inner);
                (a, b, c)
            }
            _ => {
                let b = time_infer64(inner);
                let c = time_infer32(inner);
                let a = time_taped(inner);
                (a, b, c)
            }
        };
        taped_samples.push(taped);
        infer64_samples.push(infer64);
        infer32_samples.push(infer32);
        taped_vs_f32.push(taped as i128 - infer32 as i128);
    }
    let taped_f64_ns = median_ns(taped_samples);
    let infer_f64_ns = median_ns(infer64_samples);
    let infer_f32_ns = median_ns(infer32_samples);
    let inference_diff = median_diff(taped_vs_f32);
    let inference_speedup = taped_f64_ns as f64 / infer_f32_ns.max(1) as f64;

    // --- Claim 2: mixed factorize+refine vs full f64 LU ------------------
    let nx = if mode.smoke { 40usize } else { 80 };
    let n = nx * nx;
    let bw = nx;
    let a = helmholtz_like(n, bw);
    let b: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect();

    let mut full_samples = Vec::with_capacity(reps);
    let mut mixed_samples = Vec::with_capacity(reps);
    let mut factor_diffs = Vec::with_capacity(reps);
    let mut refine_iterations = 0usize;
    let mut rel_residual = 0.0f64;
    let mut fell_back = false;
    for _ in 0..reps {
        let t = Instant::now();
        let lu = a.clone().factorize().expect("f64 factorize");
        let x_full = lu.solve(&b);
        let full = t.elapsed().as_nanos();
        std::hint::black_box(&x_full);

        let t = Instant::now();
        let mixed = MixedBandedLu::new(a.clone()).expect("mixed factorize");
        let (x_mixed, report) = mixed.solve_reported(&b);
        let mixed_ns = t.elapsed().as_nanos();
        std::hint::black_box(&x_mixed);

        refine_iterations = report.iterations;
        rel_residual = report.rel_residual;
        fell_back = report.fell_back;

        full_samples.push(full);
        mixed_samples.push(mixed_ns);
        factor_diffs.push(full as i128 - mixed_ns as i128);
    }
    let full_f64_ns = median_ns(full_samples);
    let mixed_ns = median_ns(mixed_samples);
    let factor_diff = median_diff(factor_diffs);
    let factor_speedup = full_f64_ns as f64 / mixed_ns.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"precision\",\n  \"mode\": \"{mode_s}\",\n  \"reps\": {reps},\n  \"inference\": {{\n    \"shape\": \"{batch}x4x40x40\",\n    \"taped_f64_ns\": {taped_f64_ns},\n    \"infer_f64_ns\": {infer_f64_ns},\n    \"infer_f32_ns\": {infer_f32_ns},\n    \"paired_diff_taped_vs_f32_ns\": {inference_diff},\n    \"speedup_f32_vs_taped\": {inference_speedup:.3}\n  }},\n  \"factorization\": {{\n    \"n\": {n},\n    \"bandwidth\": {bw},\n    \"rhs_block\": {rhs_block},\n    \"full_f64_ns\": {full_f64_ns},\n    \"mixed_f32_refined_ns\": {mixed_ns},\n    \"paired_diff_full_vs_mixed_ns\": {factor_diff},\n    \"refine_iterations\": {refine_iterations},\n    \"rel_residual\": {rel_residual:.3e},\n    \"fell_back\": {fell_back},\n    \"speedup_mixed_vs_full\": {factor_speedup:.3}\n  }}\n}}\n",
        mode_s = if mode.smoke { "smoke" } else { "full" },
        rhs_block = DEFAULT_RHS_BLOCK,
    );
    std::fs::write(&mode.out, &json).expect("write bench json");
    eprintln!("{json}");
    eprintln!("wrote {}", mode.out);

    // Hard gates: these are the PR's headline invariants, so a regression
    // fails `scripts/bench.sh` outright.
    assert!(
        !fell_back,
        "mixed-precision refinement fell back to full f64 LU on a well-conditioned Helmholtz system"
    );
    assert!(
        rel_residual <= maps_linalg::mixed::DEFAULT_REFINE_TOL,
        "refined relative residual {rel_residual:.3e} exceeds the matched-accuracy tolerance {}",
        maps_linalg::mixed::DEFAULT_REFINE_TOL
    );
    assert!(
        inference_diff > 0,
        "f32 tape-free inference must beat the taped f64 forward: \
         paired median diff {inference_diff} ns ({infer_f32_ns} vs {taped_f64_ns} ns)"
    );
    if mode.smoke {
        // Smoke runs on tiny grids sit at the noise floor; allow 10% slack.
        let slack = (full_f64_ns as i128) / 10;
        assert!(
            factor_diff >= -slack,
            "mixed factorize+refine must be no slower than full f64 LU (within noise): \
             paired median diff {factor_diff} ns ({mixed_ns} vs {full_f64_ns} ns)"
        );
    } else {
        assert!(
            factor_diff > 0,
            "mixed factorize+refine must beat the full f64 LU at device size: \
             paired median diff {factor_diff} ns ({mixed_ns} vs {full_f64_ns} ns)"
        );
    }
}
