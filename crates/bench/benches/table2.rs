//! Table II reproduction: gradient-computation method comparison.
//!
//! For FNO and UNet field predictors trained on the perturbed-trajectory
//! bending dataset, compares three ways of obtaining the design gradient:
//!
//! * **AD-Black Box** — autodiff through a scalar-response CNN,
//! * **AD-Pred Field** — autodiff through field predictor + objective,
//! * **Fwd & Adj Field** — analytic gradient from NN forward + adjoint
//!   fields,
//!
//! each scored by cosine similarity against the exact FDFD adjoint
//! gradient. Expected shape (paper Table II): Fwd & Adj Field wins by a
//! wide margin.

use maps_bench::{build_dataset, calibrated_device, train_baseline, Baseline, TrainedModel};
use maps_core::{FieldSolver, RealField2d};
use maps_data::{DeviceKind, SamplingStrategy};
use maps_nn::{Adam, BlackBoxConfig, BlackBoxNet, Model};
use maps_tensor::{OwnedTape, Params, Tensor};
use maps_train::{
    ad_black_box_gradient, ad_pred_field_gradient, encode_input, fwd_adj_field_gradient,
    gradient_similarity, mean, NeuralFieldSolver,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Trains a black-box transmission regressor on the dataset's samples.
fn train_black_box(
    dataset: &maps_bench::BenchDataset,
    epochs: usize,
    seed: u64,
) -> (BlackBoxNet, Params) {
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = BlackBoxNet::new(
        &mut params,
        &mut rng,
        BlackBoxConfig {
            in_channels: 4,
            width: 8,
            stages: 2,
        },
    );
    let mut adam = Adam::new(2e-3);
    for _ in 0..epochs {
        for sample in &dataset.train {
            let omega = maps_core::omega_for_wavelength(sample.labels.wavelength);
            let input = encode_input(&sample.eps_r, &sample.source, omega, false);
            let target = sample.labels.total_transmission();
            let y = model.forward(&params, input.trace());
            let loss = y.mse(Tensor::from_vec(&[1, 1], vec![target]));
            let grads = loss.backward();
            adam.step(&mut params, &grads);
        }
    }
    (model, params)
}

struct MethodScores {
    black_box: f64,
    pred_field: f64,
    fwd_adj: f64,
}

fn score_methods(
    trained: &TrainedModel,
    blackbox: &(BlackBoxNet, Params),
    dataset: &maps_bench::BenchDataset,
) -> MethodScores {
    let device = &dataset.device;
    let objective = device.problem.objective().expect("objective");
    // Use the first objective term's functional for the AD-Pred-Field path.
    let monitor = maps_fdfd::ModeMonitor::new(
        &device.problem.base_eps,
        &device.problem.terms[0].port,
        device.problem.omega(),
    )
    .expect("monitor");
    let functional = monitor.outgoing_functional();

    struct Borrowed<'a>(&'a TrainedModel);
    impl maps_nn::Model for Borrowed<'_> {
        fn forward(
            &self,
            params: &Params,
            x: Tensor<f64, OwnedTape<f64>>,
        ) -> Tensor<f64, OwnedTape<f64>> {
            self.0.model.forward(params, x)
        }
        fn infer(&self, params: &Params, x: Tensor) -> Tensor {
            self.0.model.infer(params, x)
        }
        fn infer_f32(&self, params: &Params<f32>, x: Tensor<f32>) -> Tensor<f32> {
            self.0.model.infer_f32(params, x)
        }
        fn in_channels(&self) -> usize {
            self.0.model.in_channels()
        }
        fn name(&self) -> &str {
            self.0.model.name()
        }
        fn wants_wave_prior(&self) -> bool {
            self.0.model.wants_wave_prior()
        }
    }
    let solver = NeuralFieldSolver::new(
        Borrowed(trained),
        trained.params.clone(),
        trained.normalizer,
    );

    let (mut s_bb, mut s_pf, mut s_fa) = (Vec::new(), Vec::new(), Vec::new());
    for sample in &dataset.test {
        let Some(exact) = sample.labels.adjoint_gradient.as_ref() else {
            continue;
        };
        let omega = maps_core::omega_for_wavelength(sample.labels.wavelength);
        let to_patch = |g: &RealField2d| -> RealField2d {
            let p = device.problem.gradient_to_patch(g);
            RealField2d::from_vec(exact.grid(), p.as_slice().to_vec())
        };
        let g_bb = ad_black_box_gradient(
            &blackbox.0,
            &blackbox.1,
            &sample.eps_r,
            &sample.source,
            omega,
        );
        s_bb.push(gradient_similarity(&to_patch(&g_bb), exact));
        let g_pf = ad_pred_field_gradient(
            trained.model.as_ref(),
            &trained.params,
            &sample.eps_r,
            &sample.source,
            omega,
            &functional,
        );
        s_pf.push(gradient_similarity(&to_patch(&g_pf), exact));
        if let Ok(g_fa) =
            fwd_adj_field_gradient(&solver, &sample.eps_r, &sample.source, omega, &objective)
        {
            s_fa.push(gradient_similarity(&to_patch(&g_fa), exact));
        }
    }
    // Sanity: the neural solver trait path still works (not used further).
    let _ = solver.name();
    MethodScores {
        black_box: mean(&s_bb),
        pred_field: mean(&s_pf),
        fwd_adj: mean(&s_fa),
    }
}

fn main() {
    let t0 = Instant::now();
    println!("=== Table II: gradient calculation methods (bending device) ===\n");
    let device = calibrated_device(DeviceKind::Bending);
    let dataset = build_dataset(&device, SamplingStrategy::PerturbedOptTraj, 32, 12, 21);
    println!(
        "{:>10} | {:>16} | {:>15}",
        "models", "Grad Method", "Grad Similarity"
    );
    println!("{}", "-".repeat(49));
    let mut summary = Vec::new();
    for baseline in [Baseline::Fno, Baseline::UNet] {
        let trained = train_baseline(baseline, &dataset, 14, 10, 3);
        let blackbox = train_black_box(&dataset, 15, 7);
        let scores = score_methods(&trained, &blackbox, &dataset);
        for (method, value) in [
            ("AD-Black Box", scores.black_box),
            ("AD-Pred Field", scores.pred_field),
            ("Fwd & Adj Field", scores.fwd_adj),
        ] {
            println!(
                "{:>10} | {:>16} | {:>15.4}",
                trained.model.name(),
                method,
                value
            );
        }
        summary.push((baseline, scores));
    }
    println!();
    for (baseline, scores) in &summary {
        let wins = scores.fwd_adj > scores.black_box && scores.fwd_adj > scores.pred_field;
        println!(
            "{:>10}: Fwd & Adj Field most accurate? {}",
            baseline.label(),
            if wins { "YES" } else { "no" }
        );
    }
    println!("\n[table2 completed in {:.1?}]", t0.elapsed());
}
