//! Ablations of the design choices called out in DESIGN.md:
//!
//! 1. Direct banded LU vs BiCGSTAB FDFD backends (accuracy + runtime).
//! 2. Projection β-growth schedule: effect on final transmission and
//!    binarization.
//! 3. Density-filter radius: effect on the minimum feature size of the
//!    optimized design.

use maps_bench::calibrated_device;
use maps_core::FieldSolver;
use maps_data::DeviceKind;
use maps_fdfd::{Backend, FdfdSolver, PmlConfig};
use maps_invdes::{minimum_feature_size, ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig};
use maps_linalg::IterativeOptions;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("=== Ablations ===\n");
    let device = calibrated_device(DeviceKind::Bending);
    let problem = &device.problem;
    let source = problem.source().expect("source");
    let omega = problem.omega();
    let eps = problem
        .eps_for(&InitStrategy::Uniform(0.6).build(problem.design_size.0, problem.design_size.1));

    println!("--- (1) solver backend: direct LU vs BiCGSTAB ---");
    let pml = PmlConfig::auto(device.grid().dl);
    let direct = FdfdSolver::with_pml(pml);
    // The indefinite high-contrast Helmholtz system of a silicon device
    // defeats Jacobi-BiCGSTAB (it diverges) — which is exactly why the
    // direct banded LU is the default backend. Compare on a moderate-
    // contrast medium where both converge, and report the robustness
    // finding for the device system.
    {
        use maps_core::{ComplexField2d, Grid2d, RealField2d};
        let grid = Grid2d::new(40, 40, 0.1);
        let mild = RealField2d::constant(grid, 2.25);
        let mut j = ComplexField2d::zeros(grid);
        j.set(20, 20, maps_linalg::Complex64::ONE);
        let pml2 = PmlConfig::auto(grid.dl);
        let d2 = FdfdSolver::with_pml(pml2);
        let i2 = FdfdSolver::with_pml(pml2).backend(Backend::Iterative(IterativeOptions {
            tolerance: 1e-8,
            max_iterations: 400_000,
        }));
        let t = Instant::now();
        let e_direct = d2.solve_ez(&mild, &j, omega).expect("direct");
        let t_direct = t.elapsed();
        let t = Instant::now();
        let e_iter = i2.solve_ez(&mild, &j, omega).expect("bicgstab");
        let t_iter = t.elapsed();
        println!(
            "moderate-contrast medium: direct LU {:?}  BiCGSTAB {:?}  field N-L2 diff {:.2e}",
            t_direct,
            t_iter,
            e_direct.normalized_l2_distance(&e_iter)
        );
    }
    let iterative = FdfdSolver::with_pml(pml).backend(Backend::Iterative(IterativeOptions {
        tolerance: 1e-8,
        max_iterations: 20_000,
    }));
    let t = Instant::now();
    let e_direct = direct.solve_ez(&eps, &source, omega).expect("direct");
    let t_direct = t.elapsed();
    match iterative.solve_ez(&eps, &source, omega) {
        Ok(e_iter) => println!(
            "silicon device: direct LU {:?}  BiCGSTAB converged, field N-L2 diff {:.2e}",
            t_direct,
            e_direct.normalized_l2_distance(&e_iter)
        ),
        Err(e) => println!(
            "silicon device: direct LU {:?} (exact); BiCGSTAB FAILS on the indefinite \
             high-contrast system ({e}) — motivating the direct default",
            t_direct
        ),
    }

    println!("\n--- (2) projection beta schedule ---");
    println!(
        "{:>12} | {:>13} | {:>11}",
        "beta growth", "transmission", "gray level"
    );
    let exact = ExactAdjoint::new(direct.clone());
    for growth in [1.0, 1.08, 1.25] {
        let designer = InverseDesigner::new(OptimConfig {
            iterations: 16,
            learning_rate: 0.12,
            beta_start: 1.5,
            beta_growth: growth,
            filter_radius: 1.5,
            symmetry: None,
            litho: None,
            init: InitStrategy::Uniform(0.5),
            ..OptimConfig::default()
        });
        let result = designer.run(problem, &exact).expect("optimize");
        println!(
            "{:>12.2} | {:>13.4} | {:>11.4}",
            growth,
            result.best_objective().unwrap_or(f64::NAN),
            result.density.gray_level()
        );
    }

    println!("\n--- (3) filter radius vs minimum feature size ---");
    println!(
        "{:>13} | {:>13} | {:>16}",
        "filter radius", "transmission", "MFS (cells)"
    );
    for radius in [0.0, 1.5, 3.0] {
        let designer = InverseDesigner::new(OptimConfig {
            iterations: 16,
            learning_rate: 0.12,
            beta_start: 2.0,
            beta_growth: 1.2,
            filter_radius: radius,
            symmetry: None,
            litho: None,
            init: InitStrategy::Uniform(0.5),
            ..OptimConfig::default()
        });
        let result = designer.run(problem, &exact).expect("optimize");
        let mfs = minimum_feature_size(&result.density, 0.5, 0.05);
        println!(
            "{:>13.1} | {:>13.4} | {:>16}",
            radius,
            result.best_objective().unwrap_or(f64::NAN),
            mfs
        );
    }
    println!("\n[ablation completed in {:.1?}]", t0.elapsed());
}
