//! Perf-regression harness for the flight recorder (PR 5).
//!
//! Not a criterion bench: this harness emits a machine-readable JSON file
//! (`BENCH_pr5.json` by default) with median timings so CI can diff runs.
//!
//! Usage (via `scripts/bench.sh` or directly):
//!
//! ```text
//! cargo bench --bench obs_overhead -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the grid and repetition counts so the harness finishes
//! in seconds (wired into `scripts/check.sh`); the default full mode runs at
//! the default bending-device grid (80×80, dl = 0.05).
//!
//! Reported medians:
//!
//! - `span_disabled_ns` — one `span()` create + drop with the recorder off
//!   (the fast path every production call site pays)
//! - `span_recording_ns` — the same with the recorder capturing (timestamp,
//!   fields, ring push)
//! - `chrome_trace_per_span_ns` / `profile_per_span_ns` — exporter cost per
//!   captured span, on a synthetic nested span set
//! - `solve_cached_off_ns` / `solve_cached_on_ns` — a cached `solve_ez`
//!   with the recorder off vs. on, interleaved so bursty container noise
//!   hits both sides of a pair; the regression check uses the paired
//!   median difference
//!
//! The harness fails if instrumentation overhead on the cached solve
//! exceeds 5% — the "observability is free enough to leave on" contract.

use maps_core::{omega_for_wavelength, ComplexField2d, FieldSolver, RealField2d};
use maps_data::{DeviceKind, DeviceResolution};
use maps_fdfd::{factor_cache, FdfdSolver, PmlConfig};
use maps_linalg::Complex64;
use std::time::Instant;

struct Mode {
    smoke: bool,
    out: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr5.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out" => {
                mode.out = args.next().expect("--out needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-span cost of `span()` create + drop, measured in batches because a
/// single guard is tens of nanoseconds.
fn span_cost_ns(reps: usize, batch: usize) -> u128 {
    median_ns(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                for k in 0..batch {
                    let s = maps_obs::span("bench.obs.span").field("k", k as u64);
                    std::hint::black_box(&s);
                }
                t.elapsed().as_nanos() / batch as u128
            })
            .collect(),
    )
}

fn main() {
    let mode = parse_args();
    let res = if mode.smoke {
        DeviceResolution::low()
    } else {
        DeviceResolution::default()
    };
    let reps = if mode.smoke { 9 } else { 25 };
    let span_reps = if mode.smoke { 7 } else { 15 };
    let span_batch = if mode.smoke { 2_000 } else { 20_000 };
    let export_spans = if mode.smoke { 1_000 } else { 10_000 };

    let device = DeviceKind::Bending.build(res);
    let grid = device.grid();
    let dl = grid.dl;
    eprintln!(
        "obs_overhead: {}x{} grid (dl={dl}), {reps} reps, mode={}",
        grid.nx,
        grid.ny,
        if mode.smoke { "smoke" } else { "full" }
    );

    // Span guard cost, recorder off vs. capturing. Drain the ring after the
    // enabled pass so the captured batches don't leak into later sections.
    maps_obs::recorder::disable();
    let span_disabled_ns = span_cost_ns(span_reps, span_batch);
    maps_obs::recorder::enable();
    let span_recording_ns = span_cost_ns(span_reps, span_batch);
    maps_obs::recorder::take();
    maps_obs::recorder::disable();

    // Exporter cost per span, on a synthetic two-level nested span set.
    maps_obs::recorder::enable();
    for k in 0..export_spans / 2 {
        let _outer = maps_obs::span("bench.obs.outer").field("k", k as u64);
        let _inner = maps_obs::span("bench.obs.inner");
    }
    let spans = maps_obs::recorder::take();
    maps_obs::recorder::disable();
    assert!(spans.len() >= export_spans.min(maps_obs::recorder::capacity()));
    let chrome_trace_per_span_ns = median_ns(
        (0..span_reps)
            .map(|_| {
                let t = Instant::now();
                let json = maps_obs::chrome_trace(&spans);
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&json);
                ns / spans.len() as u128
            })
            .collect(),
    );
    let profile_per_span_ns = median_ns(
        (0..span_reps)
            .map(|_| {
                let t = Instant::now();
                let prof = maps_obs::profile(&spans);
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&prof);
                ns / spans.len() as u128
            })
            .collect(),
    );

    // Cached solve with the recorder off vs. on. The factorization is warm,
    // so the solve is sweeps + instrumentation — the worst case for relative
    // span overhead. Interleave the two variants so bursty container noise
    // (context switches, noisy neighbors) hits both sides of a pair; the
    // regression check runs on the median of the paired per-rep differences.
    let solver = FdfdSolver::with_pml(PmlConfig::auto(dl));
    let omega = omega_for_wavelength(1.55);
    let eps = RealField2d::constant(grid, 4.0);
    let mut j = ComplexField2d::zeros(grid);
    j.set(grid.nx / 2, grid.ny / 2, Complex64::ONE);
    factor_cache::global().clear();
    solver.solve_ez(&eps, &j, omega).expect("prime cache");

    let mut off_samples = Vec::with_capacity(reps);
    let mut on_samples = Vec::with_capacity(reps);
    let mut diffs: Vec<i128> = Vec::with_capacity(reps);
    for rep in 0..reps + 2 {
        maps_obs::recorder::disable();
        let t = Instant::now();
        let ez = solver.solve_ez(&eps, &j, omega).expect("solve off");
        let off = t.elapsed().as_nanos();
        std::hint::black_box(&ez);

        maps_obs::recorder::enable();
        let t = Instant::now();
        let ez = solver.solve_ez(&eps, &j, omega).expect("solve on");
        let on = t.elapsed().as_nanos();
        std::hint::black_box(&ez);
        maps_obs::recorder::take();
        maps_obs::recorder::disable();

        // The first pairs warm caches and branch predictors; discard them.
        if rep >= 2 {
            off_samples.push(off);
            on_samples.push(on);
            diffs.push(on as i128 - off as i128);
        }
    }
    diffs.sort_unstable();
    let paired_diff_ns = diffs[diffs.len() / 2];
    let solve_cached_off_ns = median_ns(off_samples);
    let solve_cached_on_ns = median_ns(on_samples);
    let overhead_pct = paired_diff_ns as f64 / solve_cached_off_ns.max(1) as f64 * 100.0;

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"mode\": \"{mode_s}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny}, \"dl\": {dl} }},\n  \"reps\": {reps},\n  \"span_ns\": {{\n    \"disabled\": {span_disabled_ns},\n    \"recording\": {span_recording_ns}\n  }},\n  \"exporter_per_span_ns\": {{\n    \"chrome_trace\": {chrome_trace_per_span_ns},\n    \"profile\": {profile_per_span_ns},\n    \"spans\": {nspans}\n  }},\n  \"cached_solve_ns\": {{\n    \"recorder_off\": {solve_cached_off_ns},\n    \"recorder_on\": {solve_cached_on_ns},\n    \"paired_diff\": {paired_diff_ns},\n    \"overhead_pct\": {overhead_pct:.3}\n  }}\n}}\n",
        mode_s = if mode.smoke { "smoke" } else { "full" },
        nx = grid.nx,
        ny = grid.ny,
        nspans = spans.len(),
    );
    std::fs::write(&mode.out, &json).expect("write bench json");
    eprintln!("{json}");
    eprintln!("wrote {}", mode.out);

    // The 5% contract is defined at the full-mode 80×80 grid; the smoke
    // solve is ~4× cheaper, so the same absolute instrumentation cost is a
    // larger fraction of it — the smoke bound only catches
    // order-of-magnitude regressions.
    let budget_pct = if mode.smoke { 15.0 } else { 5.0 };
    assert!(
        overhead_pct < budget_pct,
        "flight-recorder overhead on a cached {nx}x{ny} solve must stay under {budget_pct}%: \
         got {overhead_pct:.3}% ({solve_cached_on_ns} vs {solve_cached_off_ns} ns)",
        nx = grid.nx,
        ny = grid.ny,
    );
    assert!(
        span_disabled_ns <= span_recording_ns.max(1) * 4,
        "disabled span fast path should not cost more than the recording path: \
         {span_disabled_ns} vs {span_recording_ns} ns"
    );
}
