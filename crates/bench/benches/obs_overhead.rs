//! Perf-regression harness for the flight recorder (PR 5).
//!
//! Not a criterion bench: this harness emits a machine-readable JSON file
//! (`BENCH_pr5.json` by default) with median timings so CI can diff runs.
//!
//! Usage (via `scripts/bench.sh` or directly):
//!
//! ```text
//! cargo bench --bench obs_overhead -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the grid and repetition counts so the harness finishes
//! in seconds (wired into `scripts/check.sh`); the default full mode runs at
//! the default bending-device grid (80×80, dl = 0.05).
//!
//! Reported medians:
//!
//! - `span_disabled_ns` — one `span()` create + drop with the recorder off
//!   (the fast path every production call site pays)
//! - `span_recording_ns` — the same with the recorder capturing (timestamp,
//!   fields, ring push)
//! - `chrome_trace_per_span_ns` / `profile_per_span_ns` — exporter cost per
//!   captured span, on a synthetic nested span set
//! - `solve_cached_off_ns` / `solve_cached_on_ns` — a cached `solve_ez`
//!   with the recorder off vs. on, interleaved so bursty container noise
//!   hits both sides of a pair; the regression check uses the paired
//!   median difference
//!
//! The harness fails if instrumentation overhead on the cached solve
//! exceeds 5% — the "observability is free enough to leave on" contract.
//!
//! The harness additionally measures the **live telemetry plane** (PR 6)
//! and writes those medians to a second JSON (`BENCH_pr6.json` by default,
//! `--out-pr6 PATH`):
//!
//! - `metrics_render_ns` — one `/metrics` Prometheus render at 10/100/1000
//!   registered metrics (fresh local registry, so sizes are exact)
//! - `scraped_solve_ns` — cached-solve batches with the telemetry server
//!   idle vs scraped at 10 Hz over real TCP, interleaved pairs; the check
//!   fails if the 10 Hz scraper costs the solve plane more than 5%

use maps_core::{omega_for_wavelength, ComplexField2d, FieldSolver, RealField2d};
use maps_data::{DeviceKind, DeviceResolution};
use maps_fdfd::{factor_cache, FdfdSolver, PmlConfig};
use maps_linalg::Complex64;
use std::io::{Read, Write as _};
use std::time::{Duration, Instant};

struct Mode {
    smoke: bool,
    out: String,
    out_pr6: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr5.json".to_string(),
        out_pr6: "BENCH_pr6.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out" => {
                mode.out = args.next().expect("--out needs a path");
            }
            "--out-pr6" => {
                mode.out_pr6 = args.next().expect("--out-pr6 needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-span cost of `span()` create + drop, measured in batches because a
/// single guard is tens of nanoseconds.
fn span_cost_ns(reps: usize, batch: usize) -> u128 {
    median_ns(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                for k in 0..batch {
                    let s = maps_obs::span("bench.obs.span").field("k", k as u64);
                    std::hint::black_box(&s);
                }
                t.elapsed().as_nanos() / batch as u128
            })
            .collect(),
    )
}

fn main() {
    let mode = parse_args();
    let res = if mode.smoke {
        DeviceResolution::low()
    } else {
        DeviceResolution::default()
    };
    let reps = if mode.smoke { 9 } else { 25 };
    let span_reps = if mode.smoke { 7 } else { 15 };
    let span_batch = if mode.smoke { 2_000 } else { 20_000 };
    let export_spans = if mode.smoke { 1_000 } else { 10_000 };

    let device = DeviceKind::Bending.build(res);
    let grid = device.grid();
    let dl = grid.dl;
    eprintln!(
        "obs_overhead: {}x{} grid (dl={dl}), {reps} reps, mode={}",
        grid.nx,
        grid.ny,
        if mode.smoke { "smoke" } else { "full" }
    );

    // Span guard cost, recorder off vs. capturing. Drain the ring after the
    // enabled pass so the captured batches don't leak into later sections.
    maps_obs::recorder::disable();
    let span_disabled_ns = span_cost_ns(span_reps, span_batch);
    maps_obs::recorder::enable();
    let span_recording_ns = span_cost_ns(span_reps, span_batch);
    maps_obs::recorder::take();
    maps_obs::recorder::disable();

    // Exporter cost per span, on a synthetic two-level nested span set.
    maps_obs::recorder::enable();
    for k in 0..export_spans / 2 {
        let _outer = maps_obs::span("bench.obs.outer").field("k", k as u64);
        let _inner = maps_obs::span("bench.obs.inner");
    }
    let spans = maps_obs::recorder::take();
    maps_obs::recorder::disable();
    assert!(spans.len() >= export_spans.min(maps_obs::recorder::capacity()));
    let chrome_trace_per_span_ns = median_ns(
        (0..span_reps)
            .map(|_| {
                let t = Instant::now();
                let json = maps_obs::chrome_trace(&spans);
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&json);
                ns / spans.len() as u128
            })
            .collect(),
    );
    let profile_per_span_ns = median_ns(
        (0..span_reps)
            .map(|_| {
                let t = Instant::now();
                let prof = maps_obs::profile(&spans);
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&prof);
                ns / spans.len() as u128
            })
            .collect(),
    );

    // Cached solve with the recorder off vs. on. The factorization is warm,
    // so the solve is sweeps + instrumentation — the worst case for relative
    // span overhead. Interleave the two variants so bursty container noise
    // (context switches, noisy neighbors) hits both sides of a pair; the
    // regression check runs on the median of the paired per-rep differences.
    let solver = FdfdSolver::with_pml(PmlConfig::auto(dl));
    let omega = omega_for_wavelength(1.55);
    let eps = RealField2d::constant(grid, 4.0);
    let mut j = ComplexField2d::zeros(grid);
    j.set(grid.nx / 2, grid.ny / 2, Complex64::ONE);
    factor_cache::global().clear();
    solver.solve_ez(&eps, &j, omega).expect("prime cache");

    let mut off_samples = Vec::with_capacity(reps);
    let mut on_samples = Vec::with_capacity(reps);
    let mut diffs: Vec<i128> = Vec::with_capacity(reps);
    for rep in 0..reps + 2 {
        maps_obs::recorder::disable();
        let t = Instant::now();
        let ez = solver.solve_ez(&eps, &j, omega).expect("solve off");
        let off = t.elapsed().as_nanos();
        std::hint::black_box(&ez);

        maps_obs::recorder::enable();
        let t = Instant::now();
        let ez = solver.solve_ez(&eps, &j, omega).expect("solve on");
        let on = t.elapsed().as_nanos();
        std::hint::black_box(&ez);
        maps_obs::recorder::take();
        maps_obs::recorder::disable();

        // The first pairs warm caches and branch predictors; discard them.
        if rep >= 2 {
            off_samples.push(off);
            on_samples.push(on);
            diffs.push(on as i128 - off as i128);
        }
    }
    diffs.sort_unstable();
    let paired_diff_ns = diffs[diffs.len() / 2];
    let solve_cached_off_ns = median_ns(off_samples);
    let solve_cached_on_ns = median_ns(on_samples);
    let overhead_pct = paired_diff_ns as f64 / solve_cached_off_ns.max(1) as f64 * 100.0;

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"mode\": \"{mode_s}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny}, \"dl\": {dl} }},\n  \"reps\": {reps},\n  \"span_ns\": {{\n    \"disabled\": {span_disabled_ns},\n    \"recording\": {span_recording_ns}\n  }},\n  \"exporter_per_span_ns\": {{\n    \"chrome_trace\": {chrome_trace_per_span_ns},\n    \"profile\": {profile_per_span_ns},\n    \"spans\": {nspans}\n  }},\n  \"cached_solve_ns\": {{\n    \"recorder_off\": {solve_cached_off_ns},\n    \"recorder_on\": {solve_cached_on_ns},\n    \"paired_diff\": {paired_diff_ns},\n    \"overhead_pct\": {overhead_pct:.3}\n  }}\n}}\n",
        mode_s = if mode.smoke { "smoke" } else { "full" },
        nx = grid.nx,
        ny = grid.ny,
        nspans = spans.len(),
    );
    std::fs::write(&mode.out, &json).expect("write bench json");
    eprintln!("{json}");
    eprintln!("wrote {}", mode.out);

    // The 5% contract is defined at the full-mode 80×80 grid; the smoke
    // solve is ~4× cheaper, so the same absolute instrumentation cost is a
    // larger fraction of it — the smoke bound only catches
    // order-of-magnitude regressions.
    let budget_pct = if mode.smoke { 15.0 } else { 5.0 };
    assert!(
        overhead_pct < budget_pct,
        "flight-recorder overhead on a cached {nx}x{ny} solve must stay under {budget_pct}%: \
         got {overhead_pct:.3}% ({solve_cached_on_ns} vs {solve_cached_off_ns} ns)",
        nx = grid.nx,
        ny = grid.ny,
    );
    assert!(
        span_disabled_ns <= span_recording_ns.max(1) * 4,
        "disabled span fast path should not cost more than the recording path: \
         {span_disabled_ns} vs {span_recording_ns} ns"
    );

    scrape_bench(&mode, &solver, &eps, &j, omega, reps, span_reps);
}

/// One GET against the telemetry server, reading the full response.
fn scrape_once(addr: std::net::SocketAddr) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect telemetry server");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n").expect("send scrape");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read scrape");
    assert!(
        body.starts_with("HTTP/1.1 200"),
        "scrape failed: {body:.64}"
    );
    std::hint::black_box(&body);
}

/// `/metrics` render latency at a given registry size (a fresh local
/// registry, so the metric count is exact, not whatever the process
/// accumulated).
fn metrics_render_ns(n_metrics: usize, reps: usize) -> u128 {
    let reg = maps_obs::Registry::new();
    // A representative mix: mostly counters, some gauges, and log-bucketed
    // histograms (the expensive renders — three quantile estimations each).
    for i in 0..n_metrics {
        match i % 10 {
            0..=6 => reg
                .counter(&format!("bench.scrape.counter.{i}"))
                .add(i as u64),
            7..=8 => reg.gauge(&format!("bench.scrape.gauge.{i}")).set(i as f64),
            _ => {
                let h = reg.histogram(&format!("bench.scrape.hist.{i}"));
                for k in 0..64 {
                    h.record((k + 1) as f64 * 1e-6);
                }
            }
        }
    }
    median_ns(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let text = reg.prometheus_text();
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&text);
                ns
            })
            .collect(),
    )
}

/// Measures the live-plane costs and writes `BENCH_pr6.json`.
#[allow(clippy::too_many_arguments)]
fn scrape_bench(
    mode: &Mode,
    solver: &FdfdSolver,
    eps: &RealField2d,
    j: &ComplexField2d,
    omega: f64,
    reps: usize,
    render_reps: usize,
) {
    let render_10 = metrics_render_ns(10, render_reps);
    let render_100 = metrics_render_ns(100, render_reps);
    let render_1000 = metrics_render_ns(1000, render_reps);

    // Paired cached-solve batches: server idle vs scraped at 10 Hz. A batch
    // is long enough for the scraper to land mid-measurement, and the two
    // variants interleave per rep so machine noise hits both sides.
    let server = maps_obs::serve("127.0.0.1:0").expect("bind bench telemetry server");
    let addr = server.addr();
    let batch = if mode.smoke { 8 } else { 40 };
    let grid = eps.grid();
    let solve_batch = || {
        let t = Instant::now();
        for _ in 0..batch {
            let ez = solver.solve_ez(eps, j, omega).expect("bench solve");
            std::hint::black_box(&ez);
        }
        t.elapsed().as_nanos() / batch as u128
    };

    let mut idle_samples = Vec::with_capacity(reps);
    let mut scraped_samples = Vec::with_capacity(reps);
    let mut diffs: Vec<i128> = Vec::with_capacity(reps);
    for rep in 0..reps + 2 {
        let idle = solve_batch();
        let scraped = {
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    // 10 Hz scraper over real TCP.
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        scrape_once(addr);
                        std::thread::sleep(Duration::from_millis(100));
                    }
                });
                let ns = solve_batch();
                stop.store(true, std::sync::atomic::Ordering::Release);
                ns
            })
        };
        if rep >= 2 {
            idle_samples.push(idle);
            scraped_samples.push(scraped);
            diffs.push(scraped as i128 - idle as i128);
        }
    }
    server.stop();
    diffs.sort_unstable();
    let paired_diff_ns = diffs[diffs.len() / 2];
    let idle_ns = median_ns(idle_samples);
    let scraped_ns = median_ns(scraped_samples);
    let overhead_pct = paired_diff_ns as f64 / idle_ns.max(1) as f64 * 100.0;

    let json = format!(
        "{{\n  \"bench\": \"obs_scrape\",\n  \"mode\": \"{mode_s}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny} }},\n  \"reps\": {reps},\n  \"metrics_render_ns\": {{\n    \"n10\": {render_10},\n    \"n100\": {render_100},\n    \"n1000\": {render_1000}\n  }},\n  \"scraped_solve_ns\": {{\n    \"idle\": {idle_ns},\n    \"scraped_10hz\": {scraped_ns},\n    \"paired_diff\": {paired_diff_ns},\n    \"overhead_pct\": {overhead_pct:.3}\n  }}\n}}\n",
        mode_s = if mode.smoke { "smoke" } else { "full" },
        nx = grid.nx,
        ny = grid.ny,
    );
    std::fs::write(&mode.out_pr6, &json).expect("write pr6 bench json");
    eprintln!("{json}");
    eprintln!("wrote {}", mode.out_pr6);

    // The scrape plane must be invisible to the solve plane: same 5%
    // full-mode budget as the recorder, relaxed in smoke mode where a
    // single context switch is a visible fraction of the tiny batches.
    let budget_pct = if mode.smoke { 20.0 } else { 5.0 };
    assert!(
        overhead_pct < budget_pct,
        "10 Hz scraping must cost the cached solve under {budget_pct}%: \
         got {overhead_pct:.3}% ({scraped_ns} vs {idle_ns} ns)"
    );
}
