//! Shared harness utilities for the table/figure reproduction benches.
//!
//! Every table and figure of the MAPS paper's evaluation section has a
//! `[[bench]]` target in this crate; the helpers here build datasets, train
//! the reference models, and compute the paper's standardized metrics so
//! each bench prints rows in the same format as the paper.

use maps_core::{FieldSolver, RealField2d, Sample};
use maps_data::{
    label_batch, sample_densities, DeviceKind, DeviceResolution, DeviceSpec, GenerateConfig,
    SamplerConfig, SamplingStrategy,
};
use maps_fdfd::{FdfdSolver, PmlConfig};
use maps_nn::{
    Ffno, FfnoConfig, Fno, FnoConfig, Model, NeurOLight, NeurOLightConfig, UNet, UNetConfig,
};
use maps_tensor::Params;
use maps_train::{
    evaluate_n_l2, fwd_adj_field_gradient, gradient_similarity, train_field_model, FieldNormalizer,
    LoaderConfig, NeuralFieldSolver, TrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The four field-predicting reference baselines of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Fourier Neural Operator.
    Fno,
    /// Factorized FNO.
    Ffno,
    /// UNet.
    UNet,
    /// NeurOLight.
    NeurOLight,
}

impl Baseline {
    /// All baselines in the paper's row order.
    pub fn all() -> [Baseline; 4] {
        [
            Baseline::Fno,
            Baseline::Ffno,
            Baseline::UNet,
            Baseline::NeurOLight,
        ]
    }

    /// Paper-style row label.
    pub fn label(&self) -> &'static str {
        match self {
            Baseline::Fno => "FNO [6]",
            Baseline::Ffno => "F-FNO [7]",
            Baseline::UNet => "UNet [8]",
            Baseline::NeurOLight => "NeurOLight [10]",
        }
    }

    /// Builds the model with a standard small benchmark configuration.
    pub fn build(&self, params: &mut Params, seed: u64, width: usize) -> Box<dyn Model> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Baseline::Fno => Box::new(Fno::new(
                params,
                &mut rng,
                FnoConfig {
                    in_channels: 4,
                    out_channels: 2,
                    width,
                    modes: 6,
                    depth: 3,
                },
            )),
            Baseline::Ffno => Box::new(Ffno::new(
                params,
                &mut rng,
                FfnoConfig {
                    in_channels: 4,
                    out_channels: 2,
                    width,
                    modes: 6,
                    depth: 3,
                },
            )),
            Baseline::UNet => Box::new(UNet::new(
                params,
                &mut rng,
                UNetConfig {
                    in_channels: 4,
                    out_channels: 2,
                    width,
                },
            )),
            Baseline::NeurOLight => Box::new(NeurOLight::new(
                params,
                &mut rng,
                NeurOLightConfig {
                    in_channels: 6,
                    out_channels: 2,
                    width,
                    modes: 6,
                    depth: 3,
                },
            )),
        }
    }
}

/// A calibrated benchmark device plus its train/test sample sets.
pub struct BenchDataset {
    /// The device (calibrated).
    pub device: DeviceSpec,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out samples drawn from the realistic (trajectory) distribution.
    pub test: Vec<Sample>,
}

/// Builds a calibrated low-fidelity device.
pub fn calibrated_device(kind: DeviceKind) -> DeviceSpec {
    let mut device = kind.build(DeviceResolution::low());
    let solver = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));
    device
        .problem
        .calibrate(&solver)
        .expect("device calibration");
    device
}

/// Generates a train/test dataset pair for a device.
///
/// Training densities come from `strategy`; test densities always come from
/// the *perturbed trajectory* distribution (a different seed), matching the
/// paper's premise that an inverse designer queries trajectory-like
/// structures at test time.
pub fn build_dataset(
    device: &DeviceSpec,
    strategy: SamplingStrategy,
    train_count: usize,
    test_count: usize,
    seed: u64,
) -> BenchDataset {
    let train_densities = sample_densities(
        strategy,
        device,
        &SamplerConfig {
            count: train_count,
            seed,
            trajectory_iterations: 18,
            perturbation: 0.25,
        },
    )
    .expect("train sampling");
    let test_densities = sample_densities(
        SamplingStrategy::PerturbedOptTraj,
        device,
        &SamplerConfig {
            count: test_count,
            seed: seed.wrapping_add(1000),
            trajectory_iterations: 18,
            perturbation: 0.25,
        },
    )
    .expect("test sampling");
    // Training data includes adjoint-excitation samples so neural solvers
    // can answer the adjoint queries of inverse design; the test set stays
    // forward-only (evaluation matches the paper's field-prediction task).
    let train_cfg = GenerateConfig {
        with_adjoint_source_samples: true,
        ..Default::default()
    };
    let test_cfg = GenerateConfig::default();
    let train = label_batch(device, &train_densities, &train_cfg).expect("train labels");
    let test = label_batch(device, &test_densities, &test_cfg).expect("test labels");
    BenchDataset {
        device: device.clone(),
        train,
        test,
    }
}

/// One trained model with everything needed for evaluation.
pub struct TrainedModel {
    /// The model.
    pub model: Box<dyn Model>,
    /// Its trained parameters.
    pub params: Params,
    /// Field normalizer fitted on the training set.
    pub normalizer: FieldNormalizer,
    /// Final training loss.
    pub final_loss: f64,
}

/// Trains a baseline on a dataset with standard benchmark settings.
pub fn train_baseline(
    baseline: Baseline,
    dataset: &BenchDataset,
    epochs: usize,
    width: usize,
    seed: u64,
) -> TrainedModel {
    let mut params = Params::new();
    let model = baseline.build(&mut params, seed, width);
    let report = train_field_model(
        model.as_ref(),
        &mut params,
        &dataset.train,
        &TrainConfig {
            epochs,
            learning_rate: 3e-3,
            loader: LoaderConfig {
                batch_size: 4,
                seed,
                wave_prior: false, // overridden by the trainer per model
                mixup: 0,
            },
            ..Default::default()
        },
    );
    TrainedModel {
        model,
        params,
        normalizer: report.normalizer,
        final_loss: report.final_loss(),
    }
}

/// The paper's three headline numbers for a trained model:
/// `(train N-L2, test N-L2, test gradient similarity)`.
pub struct EvalRow {
    /// Mean N-L2 field error on the training samples.
    pub train_nl2: f64,
    /// Mean N-L2 field error on the test samples.
    pub test_nl2: f64,
    /// Mean gradient cosine similarity (Fwd&Adj-Field method vs exact
    /// FDFD adjoint) on test samples carrying adjoint labels.
    pub grad_similarity: f64,
}

/// Evaluates a trained model on a dataset with the standardized metrics.
pub fn evaluate(trained: &TrainedModel, dataset: &BenchDataset) -> EvalRow {
    let train_nl2 = evaluate_n_l2(
        trained.model.as_ref(),
        &trained.params,
        &dataset.train,
        trained.normalizer,
    );
    let test_nl2 = evaluate_n_l2(
        trained.model.as_ref(),
        &trained.params,
        &dataset.test,
        trained.normalizer,
    );
    let grad_similarity = mean_grad_similarity(trained, dataset);
    EvalRow {
        train_nl2,
        test_nl2,
        grad_similarity,
    }
}

/// Mean gradient similarity of the Fwd&Adj-Field method over the test set.
pub fn mean_grad_similarity(trained: &TrainedModel, dataset: &BenchDataset) -> f64 {
    // Wrap the already-trained model in a solver without retraining: build
    // an ad-hoc NeuralFieldSolver facade via a small adapter.
    struct Borrowed<'a> {
        inner: &'a TrainedModel,
    }
    impl maps_nn::Model for Borrowed<'_> {
        fn forward(
            &self,
            params: &Params,
            x: maps_tensor::Tensor<f64, maps_tensor::OwnedTape<f64>>,
        ) -> maps_tensor::Tensor<f64, maps_tensor::OwnedTape<f64>> {
            self.inner.model.forward(params, x)
        }
        fn infer(&self, params: &Params, x: maps_tensor::Tensor<f64>) -> maps_tensor::Tensor<f64> {
            self.inner.model.infer(params, x)
        }
        fn infer_f32(
            &self,
            params: &maps_tensor::Params<f32>,
            x: maps_tensor::Tensor<f32>,
        ) -> maps_tensor::Tensor<f32> {
            self.inner.model.infer_f32(params, x)
        }
        fn in_channels(&self) -> usize {
            self.inner.model.in_channels()
        }
        fn name(&self) -> &str {
            self.inner.model.name()
        }
        fn wants_wave_prior(&self) -> bool {
            self.inner.model.wants_wave_prior()
        }
    }
    let solver = NeuralFieldSolver::new(
        Borrowed { inner: trained },
        trained.params.clone(),
        trained.normalizer,
    );
    let device = &dataset.device;
    let objective = device.problem.objective().expect("objective");
    let mut sims = Vec::new();
    for sample in &dataset.test {
        let Some(exact) = sample.labels.adjoint_gradient.as_ref() else {
            continue;
        };
        let omega = maps_core::omega_for_wavelength(sample.labels.wavelength);
        let Ok(grad) =
            fwd_adj_field_gradient(&solver, &sample.eps_r, &sample.source, omega, &objective)
        else {
            continue;
        };
        let patch = device.problem.gradient_to_patch(&grad);
        let grad_field = RealField2d::from_vec(exact.grid(), patch.as_slice().to_vec());
        sims.push(gradient_similarity(&grad_field, exact));
    }
    maps_train::mean(&sims)
}

/// Exact-FDFD reference timing: mean seconds per forward solve over the
/// test samples.
pub fn fdfd_solve_seconds(dataset: &BenchDataset, repeats: usize) -> f64 {
    let solver = FdfdSolver::with_pml(PmlConfig::auto(dataset.device.grid().dl));
    let sample = &dataset.test[0];
    let omega = maps_core::omega_for_wavelength(sample.labels.wavelength);
    let t0 = std::time::Instant::now();
    for _ in 0..repeats {
        let _ = solver
            .solve_ez(&sample.eps_r, &sample.source, omega)
            .expect("solve");
    }
    t0.elapsed().as_secs_f64() / repeats as f64
}

/// Simple fixed-width table printer.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let line: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join(" | "));
}

/// ASCII histogram of values in `[0, 1]`.
pub fn ascii_histogram(values: &[f64], bins: usize) -> Vec<(String, usize)> {
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = ((v * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(b, c)| {
            (
                format!(
                    "{:.2}-{:.2}",
                    b as f64 / bins as f64,
                    (b + 1) as f64 / bins as f64
                ),
                c,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_cover_unit_interval() {
        let h = ascii_histogram(&[0.0, 0.05, 0.5, 0.99, 1.0], 10);
        assert_eq!(h.len(), 10);
        assert_eq!(h[0].1, 2);
        assert_eq!(h[5].1, 1);
        assert_eq!(h[9].1, 2); // 0.99 and the clamped 1.0
    }

    #[test]
    fn baselines_have_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            Baseline::all().iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
