//! Data sampling strategies (paper §III-A1, Table I, Fig. 5).
//!
//! * **Random** — i.i.d. binarized blob patterns from a predefined design
//!   space (the prior-work baseline; yields mostly low-FoM devices).
//! * **Opt-Traj** — densities recorded along adjoint-optimization
//!   trajectories, covering the soft-to-hard, low-to-high-FoM progression
//!   an inverse designer actually queries.
//! * **Perturbed Opt-Traj** — trajectory points plus filtered perturbations,
//!   re-balancing the FoM distribution.

use maps_invdes::{
    ConeFilter, ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig, OptimError, Patch,
    Reparam, ReparamChain, Symmetry, TanhProjection,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;

/// Which sampling strategy generated a density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Random binarized patterns.
    Random,
    /// Raw optimization-trajectory samples.
    OptTraj,
    /// Perturbed optimization-trajectory samples.
    PerturbedOptTraj,
}

impl SamplingStrategy {
    /// Snake-case name used in files and tables.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingStrategy::Random => "random",
            SamplingStrategy::OptTraj => "opt_traj",
            SamplingStrategy::PerturbedOptTraj => "perturb_opt_traj",
        }
    }
}

/// Configuration of the density sampler.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Number of densities to produce.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optimization iterations per trajectory run (trajectory strategies).
    pub trajectory_iterations: usize,
    /// θ-space perturbation amplitude (perturbed strategy).
    pub perturbation: f64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            count: 32,
            seed: 7,
            trajectory_iterations: 16,
            perturbation: 0.25,
        }
    }
}

/// Draws design densities for a device according to a strategy.
///
/// # Errors
///
/// Returns [`OptimError`] when a trajectory run's simulation fails.
pub fn sample_densities(
    strategy: SamplingStrategy,
    device: &DeviceSpec,
    config: &SamplerConfig,
) -> Result<Vec<Patch>, OptimError> {
    match strategy {
        SamplingStrategy::Random => Ok(random_densities(device, config)),
        SamplingStrategy::OptTraj => trajectory_densities(device, config, 0.0),
        SamplingStrategy::PerturbedOptTraj => {
            trajectory_densities(device, config, config.perturbation)
        }
    }
}

fn random_densities(device: &DeviceSpec, config: &SamplerConfig) -> Vec<Patch> {
    let (nx, ny) = device.problem.design_size;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let chain = ReparamChain::new()
        .then(ConeFilter::new(1.5))
        .then(TanhProjection::new(15.0));
    (0..config.count)
        .map(|_| {
            let fill: f64 = rng.gen_range(0.3..0.7);
            let theta = Patch::from_vec(
                nx,
                ny,
                (0..nx * ny)
                    .map(|_| if rng.gen::<f64>() < fill { 1.0 } else { 0.0 })
                    .collect(),
            );
            chain.forward(&theta)
        })
        .collect()
}

fn trajectory_densities(
    device: &DeviceSpec,
    config: &SamplerConfig,
    perturbation: f64,
) -> Result<Vec<Patch>, OptimError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let exact = ExactAdjoint::new(maps_fdfd::FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(
        device.grid().dl,
    )));
    let mut out: Vec<Patch> = Vec::with_capacity(config.count);
    let mut run = 0u64;
    while out.len() < config.count {
        let designer = InverseDesigner::new(OptimConfig {
            iterations: config.trajectory_iterations,
            learning_rate: 0.1,
            beta_start: 1.5,
            beta_growth: 1.12,
            filter_radius: 1.5,
            symmetry: trajectory_symmetry(device),
            litho: None,
            init: InitStrategy::Random {
                seed: config.seed.wrapping_add(run),
                mean: 0.5,
                amplitude: 0.2,
            },
            ..OptimConfig::default()
        });
        let needed = config.count - out.len();
        let collected = std::cell::RefCell::new(Vec::new());
        designer.run_with_callback(&device.problem, &exact, |_rec, density, _field| {
            collected.borrow_mut().push(density.clone());
        })?;
        let trajectory = collected.into_inner();
        // Spread the kept samples across the trajectory so early (soft,
        // low-FoM) and late (hard, high-FoM) structures are both covered.
        let keep = needed.min(trajectory.len());
        for k in 0..keep {
            let idx = if keep > 1 {
                k * (trajectory.len() - 1) / (keep - 1)
            } else {
                trajectory.len() - 1
            };
            let base = &trajectory[idx];
            let sample = if perturbation > 0.0 && k % 2 == 1 {
                perturb(base, perturbation, &mut rng)
            } else {
                base.clone()
            };
            out.push(sample);
        }
        run += 1;
    }
    out.truncate(config.count);
    Ok(out)
}

/// Devices with a mirror-symmetric objective get the matching constraint
/// on their trajectories.
fn trajectory_symmetry(device: &DeviceSpec) -> Option<Symmetry> {
    match device.kind {
        crate::device::DeviceKind::Crossing => Some(Symmetry::MirrorY),
        _ => None,
    }
}

/// Applies a filtered perturbation to a density, keeping it in `[0, 1]`.
fn perturb(density: &Patch, amplitude: f64, rng: &mut StdRng) -> Patch {
    let (nx, ny) = (density.nx(), density.ny());
    let noise = Patch::from_vec(
        nx,
        ny,
        (0..nx * ny)
            .map(|_| rng.gen_range(-amplitude..amplitude))
            .collect(),
    );
    let smooth = ConeFilter::new(1.5).forward(&noise);
    let mut out = density.clone();
    for (o, n) in out.as_mut_slice().iter_mut().zip(smooth.as_slice()) {
        *o = (*o + n).clamp(0.0, 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, DeviceResolution};

    #[test]
    fn random_densities_are_binary_blobs() {
        let dev = DeviceKind::Bending.build(DeviceResolution::high());
        let cfg = SamplerConfig {
            count: 5,
            ..Default::default()
        };
        let samples = sample_densities(SamplingStrategy::Random, &dev, &cfg).unwrap();
        assert_eq!(samples.len(), 5);
        for s in &samples {
            assert_eq!((s.nx(), s.ny()), dev.problem.design_size);
            // Strongly binarized after β = 15 projection.
            assert!(s.gray_level() < 0.5, "gray level {}", s.gray_level());
        }
        // Samples differ from each other.
        assert_ne!(samples[0], samples[1]);
    }

    #[test]
    fn sampling_is_seeded() {
        let dev = DeviceKind::Bending.build(DeviceResolution::high());
        let cfg = SamplerConfig {
            count: 3,
            seed: 42,
            ..Default::default()
        };
        let a = sample_densities(SamplingStrategy::Random, &dev, &cfg).unwrap();
        let b = sample_densities(SamplingStrategy::Random, &dev, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trajectory_sampling_covers_soft_and_hard() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        let cfg = SamplerConfig {
            count: 8,
            seed: 3,
            trajectory_iterations: 8,
            perturbation: 0.0,
        };
        let samples = sample_densities(SamplingStrategy::OptTraj, &dev, &cfg).unwrap();
        assert_eq!(samples.len(), 8);
        // Early samples are softer (grayer) than late ones.
        let first_gray = samples.first().unwrap().gray_level();
        let last_gray = samples.last().unwrap().gray_level();
        assert!(
            first_gray > last_gray,
            "trajectory should binarize: {first_gray} -> {last_gray}"
        );
    }

    #[test]
    fn perturbed_differs_from_plain_trajectory() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        let cfg = SamplerConfig {
            count: 6,
            seed: 5,
            trajectory_iterations: 6,
            perturbation: 0.3,
        };
        let plain = sample_densities(SamplingStrategy::OptTraj, &dev, &cfg).unwrap();
        let perturbed = sample_densities(SamplingStrategy::PerturbedOptTraj, &dev, &cfg).unwrap();
        assert_eq!(plain.len(), perturbed.len());
        assert!(plain.iter().zip(&perturbed).any(|(a, b)| a != b));
    }
}
