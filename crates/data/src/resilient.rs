//! Fault-tolerant label generation: quarantine instead of abort.
//!
//! [`label_batch`](crate::generate::label_batch) fails the whole batch on
//! the first bad solve — correct for debugging, wasteful for overnight
//! dataset sweeps where one pathological density (or one transient solver
//! failure) should not discard thousands of good samples. The resilient
//! path runs every job, keeps the successes, and quarantines the failures
//! with enough metadata to retry them later.
//!
//! Jobs run **sequentially** here (unlike the parallel `label_batch`):
//! a deterministic solve order is what makes fault-injection tests and
//! retry-by-index reproducible. Throughput-critical fault-free sweeps
//! should keep using `label_batch`.

use crate::device::{DeviceSpec, SourceVariant};
use crate::generate::{build_objective, paint_density, GenerateConfig, GenerateError};
use maps_core::{ComplexField2d, FieldSolver, PortRecord, RealField2d, RichLabels, Sample};
use maps_fdfd::{derive_h_fields, gradient_from_fields, FdfdSolver, ModeMonitor, ModeSource};

/// One generation job that failed, with what's needed to retry it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSample {
    /// Index into the density batch.
    pub density_index: usize,
    /// Index into the device's source-variant list.
    pub variant_index: usize,
    /// Whether the job was the adjoint-excitation companion sample.
    pub adjoint_excitation: bool,
    /// The failure, stringified.
    pub error: String,
}

/// Outcome of a resilient batch: successes plus quarantined failures.
#[derive(Debug, Default)]
pub struct GenerateReport {
    /// Successfully labeled samples, in deterministic job order.
    pub ok: Vec<Sample>,
    /// Failed jobs, in deterministic job order.
    pub quarantined: Vec<QuarantinedSample>,
}

impl GenerateReport {
    /// Total jobs attempted.
    pub fn total_jobs(&self) -> usize {
        self.ok.len() + self.quarantined.len()
    }

    /// Fraction of jobs quarantined (0.0 for an empty report).
    pub fn quarantine_rate(&self) -> f64 {
        if self.total_jobs() == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / self.total_jobs() as f64
        }
    }
}

/// [`label_sample`](crate::generate::label_sample) generalized over any
/// [`FieldSolver`] — the adjoint gradient uses the trait adjoint solve and
/// the fields-product rule instead of the shared-factorization fast path,
/// and the Maxwell-residual self-check is evaluated against a reference
/// FDFD operator (the residual is a property of the *field*, so it stays
/// meaningful even when a surrogate produced it).
///
/// # Errors
///
/// Returns [`GenerateError`] when mode solving or a field solve fails.
pub fn label_sample_with(
    solver: &dyn FieldSolver,
    device: &DeviceSpec,
    density: &maps_invdes::Patch,
    variant: &SourceVariant,
    config: &GenerateConfig,
    sample_index: usize,
) -> Result<Sample, GenerateError> {
    let omega = maps_core::omega_for_wavelength(variant.wavelength);
    let mut eps = device.problem.base_eps.clone();
    paint_density(&mut eps, device, density);
    if variant.heater_on {
        device.apply_heater(&mut eps);
    }
    let in_port = device.ports[variant.input_port].with_mode(variant.mode_index);
    let source = ModeSource::new(&eps, &in_port, omega)?.current_density(eps.grid());

    let ez = solver.solve_ez(&eps, &source, omega)?;
    let objective = build_objective(device, &eps, omega)?;
    let adjoint_gradient = if config.with_adjoint {
        let rhs = ComplexField2d::from_vec(eps.grid(), objective.adjoint_rhs(&ez));
        let adjoint = solver.solve_adjoint_ez(&eps, &rhs, omega)?;
        let grad = gradient_from_fields(&ez, &adjoint, omega);
        let patch = device.problem.gradient_to_patch(&grad);
        Some(RealField2d::from_vec(
            maps_core::Grid2d::new(patch.nx(), patch.ny(), eps.grid().dl),
            patch.as_slice().to_vec(),
        ))
    } else {
        None
    };

    let injected = device.problem.normalization.max(1e-30);
    let mut transmissions = Vec::new();
    let mut reflection = 0.0;
    let mut total_out = 0.0;
    for (pi, port) in device.ports.iter().enumerate() {
        let monitor = ModeMonitor::new(&eps, port, omega)?;
        if pi == variant.input_port {
            let amp = monitor.incoming_functional().eval(&ez);
            reflection = amp.norm_sqr() / injected;
        } else {
            let amp = monitor.outgoing_functional().eval(&ez);
            let power = amp.norm_sqr() / injected;
            total_out += power;
            let scale = 1.0 / injected.sqrt();
            transmissions.push(PortRecord {
                port: pi,
                amplitude_re: amp.re * scale,
                amplitude_im: amp.im * scale,
                power,
            });
        }
    }
    let radiation = (1.0 - total_out - reflection).max(0.0);

    let maxwell_residual = if config.with_residual {
        reference_solver(&eps).residual(&eps, &source, omega, &ez)
    } else {
        0.0
    };
    let (hx, hy) = derive_h_fields(&ez, omega);
    let density_field = RealField2d::from_vec(
        maps_core::Grid2d::new(density.nx(), density.ny(), eps.grid().dl),
        density.as_slice().to_vec(),
    );
    Ok(Sample {
        device_id: format!("{}-{:04}", device.kind.name(), sample_index),
        device_kind: device.kind.name().to_string(),
        eps_r: eps,
        density: Some(density_field),
        source,
        labels: RichLabels {
            fidelity: config.fidelity,
            wavelength: variant.wavelength,
            input_port: variant.input_port,
            input_mode: variant.mode_index,
            transmissions,
            reflection,
            radiation,
            fields: maps_core::EmFields { ez, hx, hy },
            adjoint_gradient,
            maxwell_residual,
        },
    })
}

/// [`adjoint_source_sample`](crate::generate::adjoint_source_sample)
/// generalized over any [`FieldSolver`].
///
/// # Errors
///
/// Returns [`GenerateError`] when mode solving or a field solve fails.
pub fn adjoint_source_sample_with(
    solver: &dyn FieldSolver,
    device: &DeviceSpec,
    density: &maps_invdes::Patch,
    variant: &SourceVariant,
    config: &GenerateConfig,
    sample_index: usize,
) -> Result<Sample, GenerateError> {
    let omega = maps_core::omega_for_wavelength(variant.wavelength);
    let mut eps = device.problem.base_eps.clone();
    paint_density(&mut eps, device, density);
    if variant.heater_on {
        device.apply_heater(&mut eps);
    }
    let in_port = device.ports[variant.input_port].with_mode(variant.mode_index);
    let j_fwd = ModeSource::new(&eps, &in_port, omega)?.current_density(eps.grid());
    let forward = solver.solve_ez(&eps, &j_fwd, omega)?;
    let objective = build_objective(device, &eps, omega)?;
    let rhs = objective.adjoint_rhs(&forward);
    let scale = maps_linalg::Complex64::new(0.0, 1.0 / omega);
    let j_adj = ComplexField2d::from_vec(
        eps.grid(),
        rhs.iter().map(|r| *r * scale).collect(),
    );
    let ez = solver.solve_ez(&eps, &j_adj, omega)?;
    let maxwell_residual = if config.with_residual {
        reference_solver(&eps).residual(&eps, &j_adj, omega, &ez)
    } else {
        0.0
    };
    let (hx, hy) = derive_h_fields(&ez, omega);
    let density_field = RealField2d::from_vec(
        maps_core::Grid2d::new(density.nx(), density.ny(), eps.grid().dl),
        density.as_slice().to_vec(),
    );
    Ok(Sample {
        device_id: format!("{}-{:04}", device.kind.name(), sample_index),
        device_kind: device.kind.name().to_string(),
        eps_r: eps,
        density: Some(density_field),
        source: j_adj,
        labels: RichLabels {
            fidelity: config.fidelity,
            wavelength: variant.wavelength,
            input_port: variant.input_port,
            input_mode: variant.mode_index,
            transmissions: Vec::new(),
            reflection: 0.0,
            radiation: 0.0,
            fields: maps_core::EmFields { ez, hx, hy },
            adjoint_gradient: None,
            maxwell_residual,
        },
    })
}

fn reference_solver(eps: &RealField2d) -> FdfdSolver {
    FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(eps.grid().dl))
}

/// Labels a batch through an injected solver, quarantining failed jobs
/// instead of aborting the batch.
///
/// Jobs run sequentially in the same deterministic order as
/// [`label_batch`](crate::generate::label_batch) enumerates them
/// (densities × variants, forward then adjoint-excitation), so a
/// call-indexed [`maps_core::FaultInjectingSolver`] maps faults onto
/// specific jobs reproducibly.
pub fn label_batch_resilient_with(
    solver: &dyn FieldSolver,
    device: &DeviceSpec,
    densities: &[maps_invdes::Patch],
    config: &GenerateConfig,
) -> GenerateReport {
    let span = maps_obs::span("data.label_batch_resilient")
        .field("densities", densities.len())
        .field("solver", solver.name());
    let mut report = GenerateReport::default();
    for (di, density) in densities.iter().enumerate() {
        for (vi, variant) in device.variants.iter().enumerate() {
            let mut jobs = vec![false];
            if config.with_adjoint_source_samples {
                jobs.push(true);
            }
            for adjoint_excitation in jobs {
                let result = if adjoint_excitation {
                    adjoint_source_sample_with(solver, device, density, variant, config, di)
                } else {
                    label_sample_with(solver, device, density, variant, config, di)
                };
                match result {
                    Ok(sample) => report.ok.push(sample),
                    Err(e) => {
                        maps_obs::counter("samples.quarantined").inc();
                        maps_obs::error!(
                            "quarantined density {di} variant {vi} \
                             (adjoint_excitation={adjoint_excitation}): {e}"
                        );
                        report.quarantined.push(QuarantinedSample {
                            density_index: di,
                            variant_index: vi,
                            adjoint_excitation,
                            error: e.to_string(),
                        });
                    }
                }
            }
        }
    }
    maps_obs::info!(
        "resilient batch: {} ok, {} quarantined ({:.0}%) in {:.2}s",
        report.ok.len(),
        report.quarantined.len(),
        report.quarantine_rate() * 100.0,
        span.elapsed().as_secs_f64()
    );
    report
}

/// [`label_batch_resilient_with`] using the exact FDFD solver.
pub fn label_batch_resilient(
    device: &DeviceSpec,
    densities: &[maps_invdes::Patch],
    config: &GenerateConfig,
) -> GenerateReport {
    let solver = FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(device.grid().dl));
    label_batch_resilient_with(&solver, device, densities, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, DeviceResolution};
    use maps_core::{FaultInjectingSolver, FaultPlan, InjectedFault};

    #[test]
    fn fault_free_resilient_batch_matches_parallel_path_sample_count() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        let densities = vec![
            maps_invdes::Patch::constant(
                dev.problem.design_size.0,
                dev.problem.design_size.1,
                0.5,
            );
            2
        ];
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: true,
            ..Default::default()
        };
        let report = label_batch_resilient(&dev, &densities, &cfg);
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        assert_eq!(
            report.ok.len(),
            crate::generate::label_batch(&dev, &densities, &cfg).unwrap().len()
        );
        for s in &report.ok {
            assert!(s.labels.maxwell_residual < 1e-9);
        }
    }

    #[test]
    fn injected_failures_are_quarantined_not_fatal() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        let densities = vec![
            maps_invdes::Patch::constant(
                dev.problem.design_size.0,
                dev.problem.design_size.1,
                0.5,
            );
            3
        ];
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            ..Default::default()
        };
        // One solve per job (no adjoint) → call index == job index.
        let faulty = FaultInjectingSolver::new(
            FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(dev.grid().dl)),
            FaultPlan::new().fail_at(1, InjectedFault::Error),
        );
        let report = label_batch_resilient_with(&faulty, &dev, &densities, &cfg);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].density_index, 1);
        assert!(!report.quarantined[0].adjoint_excitation);
        assert_eq!(report.ok.len(), report.total_jobs() - 1);
        assert!(report.quarantine_rate() > 0.0);
    }
}
