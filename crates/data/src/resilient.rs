//! Fault-tolerant label generation: quarantine instead of abort.
//!
//! [`label_batch`](crate::generate::label_batch) fails the whole batch on
//! the first bad solve — correct for debugging, wasteful for overnight
//! dataset sweeps where one pathological density (or one transient solver
//! failure) should not discard thousands of good samples. The resilient
//! path runs every job, keeps the successes, and quarantines the failures
//! with enough metadata to retry them later.
//!
//! Jobs run **sequentially** in [`label_batch_resilient_with`]: a
//! deterministic solve order is what makes call-indexed fault-injection
//! tests and retry-by-index reproducible. The parallel variant
//! [`label_batch_resilient_par_with`] stripes densities across worker
//! threads and reassembles outcomes in input order, so its
//! [`GenerateReport`] is identical to the sequential one whenever the
//! injected solver's behavior is a deterministic function of the job's
//! *inputs* (rather than of global call order).

use crate::device::{DeviceSpec, SourceVariant};
use crate::generate::{build_objective, paint_density, GenerateConfig, GenerateError};
use maps_core::{
    ComplexField2d, FieldSolver, PortRecord, RealField2d, RichLabels, Sample, SolveRequest,
};
use maps_fdfd::{derive_h_fields, gradient_from_fields, FdfdSolver, ModeMonitor, ModeSource};
use rayon::prelude::*;

/// Unwraps a single-request batch. Rich-label solves flow through
/// [`FieldSolver::solve_ez_batch`] so direct solvers answer them from the
/// grouped substitution path; dependent stages (the adjoint RHS needs the
/// forward field) keep the stages as separate one-request batches, which
/// preserves the scalar call sequence for call-indexed fault injection.
fn solve_one(
    solver: &dyn FieldSolver,
    eps: &RealField2d,
    request: SolveRequest<'_>,
) -> Result<ComplexField2d, maps_core::SolveFieldError> {
    solver
        .solve_ez_batch(eps, &[request])
        .pop()
        .expect("a batch of one request returns one result")
}

/// One generation job that failed, with what's needed to retry it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSample {
    /// Index into the density batch.
    pub density_index: usize,
    /// Index into the device's source-variant list.
    pub variant_index: usize,
    /// Whether the job was the adjoint-excitation companion sample.
    pub adjoint_excitation: bool,
    /// The failure, stringified.
    pub error: String,
}

/// Outcome of a resilient batch: successes plus quarantined failures.
#[derive(Debug, Default)]
pub struct GenerateReport {
    /// Successfully labeled samples, in deterministic job order.
    pub ok: Vec<Sample>,
    /// Failed jobs, in deterministic job order.
    pub quarantined: Vec<QuarantinedSample>,
}

impl GenerateReport {
    /// Total jobs attempted.
    pub fn total_jobs(&self) -> usize {
        self.ok.len() + self.quarantined.len()
    }

    /// Fraction of jobs quarantined (0.0 for an empty report).
    pub fn quarantine_rate(&self) -> f64 {
        if self.total_jobs() == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / self.total_jobs() as f64
        }
    }
}

/// [`label_sample`](crate::generate::label_sample) generalized over any
/// [`FieldSolver`] — the adjoint gradient uses the trait adjoint solve and
/// the fields-product rule instead of the shared-factorization fast path,
/// and the Maxwell-residual self-check is evaluated against a reference
/// FDFD operator (the residual is a property of the *field*, so it stays
/// meaningful even when a surrogate produced it).
///
/// # Errors
///
/// Returns [`GenerateError`] when mode solving or a field solve fails.
pub fn label_sample_with(
    solver: &dyn FieldSolver,
    device: &DeviceSpec,
    density: &maps_invdes::Patch,
    variant: &SourceVariant,
    config: &GenerateConfig,
    sample_index: usize,
) -> Result<Sample, GenerateError> {
    let omega = maps_core::omega_for_wavelength(variant.wavelength);
    let mut eps = device.problem.base_eps.clone();
    paint_density(&mut eps, device, density);
    if variant.heater_on {
        device.apply_heater(&mut eps);
    }
    let in_port = device.ports[variant.input_port].with_mode(variant.mode_index);
    let source = ModeSource::new(&eps, &in_port, omega)?.current_density(eps.grid());

    let ez = solve_one(solver, &eps, SolveRequest::forward(&source, omega))?;
    let objective = build_objective(device, &eps, omega)?;
    let adjoint_gradient = if config.with_adjoint {
        let rhs = ComplexField2d::from_vec(eps.grid(), objective.adjoint_rhs(&ez));
        let adjoint = solve_one(solver, &eps, SolveRequest::adjoint(&rhs, omega))?;
        let grad = gradient_from_fields(&ez, &adjoint, omega);
        let patch = device.problem.gradient_to_patch(&grad);
        Some(RealField2d::from_vec(
            maps_core::Grid2d::new(patch.nx(), patch.ny(), eps.grid().dl),
            patch.as_slice().to_vec(),
        ))
    } else {
        None
    };

    let injected = device.problem.normalization.max(1e-30);
    let mut transmissions = Vec::new();
    let mut reflection = 0.0;
    let mut total_out = 0.0;
    for (pi, port) in device.ports.iter().enumerate() {
        let monitor = ModeMonitor::new(&eps, port, omega)?;
        if pi == variant.input_port {
            let amp = monitor.incoming_functional().eval(&ez);
            reflection = amp.norm_sqr() / injected;
        } else {
            let amp = monitor.outgoing_functional().eval(&ez);
            let power = amp.norm_sqr() / injected;
            total_out += power;
            let scale = 1.0 / injected.sqrt();
            transmissions.push(PortRecord {
                port: pi,
                amplitude_re: amp.re * scale,
                amplitude_im: amp.im * scale,
                power,
            });
        }
    }
    let radiation = (1.0 - total_out - reflection).max(0.0);

    let maxwell_residual = if config.with_residual {
        reference_solver(&eps).residual(&eps, &source, omega, &ez)
    } else {
        0.0
    };
    let (hx, hy) = derive_h_fields(&ez, omega);
    let density_field = RealField2d::from_vec(
        maps_core::Grid2d::new(density.nx(), density.ny(), eps.grid().dl),
        density.as_slice().to_vec(),
    );
    Ok(Sample {
        device_id: format!("{}-{:04}", device.kind.name(), sample_index),
        device_kind: device.kind.name().to_string(),
        eps_r: eps,
        density: Some(density_field),
        source,
        labels: RichLabels {
            fidelity: config.fidelity,
            wavelength: variant.wavelength,
            input_port: variant.input_port,
            input_mode: variant.mode_index,
            transmissions,
            reflection,
            radiation,
            fields: maps_core::EmFields { ez, hx, hy },
            adjoint_gradient,
            maxwell_residual,
        },
    })
}

/// [`adjoint_source_sample`](crate::generate::adjoint_source_sample)
/// generalized over any [`FieldSolver`].
///
/// # Errors
///
/// Returns [`GenerateError`] when mode solving or a field solve fails.
pub fn adjoint_source_sample_with(
    solver: &dyn FieldSolver,
    device: &DeviceSpec,
    density: &maps_invdes::Patch,
    variant: &SourceVariant,
    config: &GenerateConfig,
    sample_index: usize,
) -> Result<Sample, GenerateError> {
    let omega = maps_core::omega_for_wavelength(variant.wavelength);
    let mut eps = device.problem.base_eps.clone();
    paint_density(&mut eps, device, density);
    if variant.heater_on {
        device.apply_heater(&mut eps);
    }
    let in_port = device.ports[variant.input_port].with_mode(variant.mode_index);
    let j_fwd = ModeSource::new(&eps, &in_port, omega)?.current_density(eps.grid());
    let forward = solve_one(solver, &eps, SolveRequest::forward(&j_fwd, omega))?;
    let objective = build_objective(device, &eps, omega)?;
    let rhs = objective.adjoint_rhs(&forward);
    let scale = maps_linalg::Complex64::new(0.0, 1.0 / omega);
    let j_adj = ComplexField2d::from_vec(eps.grid(), rhs.iter().map(|r| *r * scale).collect());
    let ez = solve_one(solver, &eps, SolveRequest::forward(&j_adj, omega))?;
    let maxwell_residual = if config.with_residual {
        reference_solver(&eps).residual(&eps, &j_adj, omega, &ez)
    } else {
        0.0
    };
    let (hx, hy) = derive_h_fields(&ez, omega);
    let density_field = RealField2d::from_vec(
        maps_core::Grid2d::new(density.nx(), density.ny(), eps.grid().dl),
        density.as_slice().to_vec(),
    );
    Ok(Sample {
        device_id: format!("{}-{:04}", device.kind.name(), sample_index),
        device_kind: device.kind.name().to_string(),
        eps_r: eps,
        density: Some(density_field),
        source: j_adj,
        labels: RichLabels {
            fidelity: config.fidelity,
            wavelength: variant.wavelength,
            input_port: variant.input_port,
            input_mode: variant.mode_index,
            transmissions: Vec::new(),
            reflection: 0.0,
            radiation: 0.0,
            fields: maps_core::EmFields { ez, hx, hy },
            adjoint_gradient: None,
            maxwell_residual,
        },
    })
}

fn reference_solver(eps: &RealField2d) -> FdfdSolver {
    FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(eps.grid().dl))
}

/// Labels a batch through an injected solver, quarantining failed jobs
/// instead of aborting the batch.
///
/// Jobs run sequentially in the same deterministic order as
/// [`label_batch`](crate::generate::label_batch) enumerates them
/// (densities × variants, forward then adjoint-excitation), so a
/// call-indexed [`maps_core::FaultInjectingSolver`] maps faults onto
/// specific jobs reproducibly.
pub fn label_batch_resilient_with(
    solver: &dyn FieldSolver,
    device: &DeviceSpec,
    densities: &[maps_invdes::Patch],
    config: &GenerateConfig,
) -> GenerateReport {
    let span = maps_obs::span("data.label_batch_resilient")
        .field("densities", densities.len())
        .field("solver", solver.name());
    let mut report = GenerateReport::default();
    for (di, density) in densities.iter().enumerate() {
        for outcome in density_jobs(solver, device, density, config, di) {
            absorb_outcome(&mut report, outcome);
        }
    }
    log_report(&report, span.elapsed().as_secs_f64());
    report
}

/// Outcome of one labeling job, tagged for deterministic reassembly.
/// The sample is boxed: it carries full fields, so the Ok variant dwarfs
/// the quarantine record.
enum JobOutcome {
    Ok(Box<Sample>),
    Failed(QuarantinedSample),
}

/// Runs every job of one density (variants × forward/adjoint-excitation)
/// in the canonical sequential order, capturing failures as quarantine
/// records instead of aborting.
fn density_jobs(
    solver: &dyn FieldSolver,
    device: &DeviceSpec,
    density: &maps_invdes::Patch,
    config: &GenerateConfig,
    di: usize,
) -> Vec<JobOutcome> {
    // Per-density worker span: on the parallel path this opens on a scoped
    // worker thread, and because the vendored rayon adopts the spawner's
    // TaskContext it carries the batch span's flow/parent ids — the
    // exported trace stitches every worker lane back to the batch.
    let _span = maps_obs::span("data.label_density").field("di", di);
    let mut outcomes = Vec::new();
    for (vi, variant) in device.variants.iter().enumerate() {
        let mut kinds = vec![false];
        if config.with_adjoint_source_samples {
            kinds.push(true);
        }
        for adjoint_excitation in kinds {
            let result = if adjoint_excitation {
                adjoint_source_sample_with(solver, device, density, variant, config, di)
            } else {
                label_sample_with(solver, device, density, variant, config, di)
            };
            outcomes.push(match result {
                Ok(sample) => JobOutcome::Ok(Box::new(sample)),
                Err(e) => JobOutcome::Failed(QuarantinedSample {
                    density_index: di,
                    variant_index: vi,
                    adjoint_excitation,
                    error: e.to_string(),
                }),
            });
        }
    }
    outcomes
}

fn absorb_outcome(report: &mut GenerateReport, outcome: JobOutcome) {
    match outcome {
        JobOutcome::Ok(sample) => report.ok.push(*sample),
        JobOutcome::Failed(q) => {
            maps_obs::counter("samples.quarantined").inc();
            maps_obs::error!(
                "quarantined density {} variant {} (adjoint_excitation={}): {}",
                q.density_index,
                q.variant_index,
                q.adjoint_excitation,
                q.error
            );
            report.quarantined.push(q);
        }
    }
}

fn log_report(report: &GenerateReport, elapsed: f64) {
    // Per-batch quarantine trajectory: one point per labeled batch, indexed
    // by a process-wide batch sequence number.
    static BATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let batch = BATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    maps_obs::series("data.quarantine").push(batch, report.quarantined.len() as f64);
    maps_obs::info!(
        "resilient batch: {} ok, {} quarantined ({:.0}%) in {elapsed:.2}s",
        report.ok.len(),
        report.quarantined.len(),
        report.quarantine_rate() * 100.0,
    );
}

/// Parallel [`label_batch_resilient_with`]: densities are striped across
/// worker threads (each worker runs one density's jobs in canonical order)
/// and outcomes are reassembled in input order, so the returned
/// [`GenerateReport`] lists `ok` samples and `quarantined` jobs in exactly
/// the order the sequential path produces.
///
/// Determinism contract: with a solver whose success/failure and output
/// bits depend only on the job inputs (true for the exact FDFD solver and
/// for content-keyed fault injection), the parallel report is
/// **byte-identical** to the sequential one. A *call-indexed* fault plan
/// ([`maps_core::FaultPlan`]) is scheduled by arrival order and therefore
/// maps onto different jobs under parallel execution — use the sequential
/// path to reproduce those schedules exactly.
pub fn label_batch_resilient_par_with(
    solver: &(dyn FieldSolver + Sync),
    device: &DeviceSpec,
    densities: &[maps_invdes::Patch],
    config: &GenerateConfig,
) -> GenerateReport {
    let span = maps_obs::span("data.label_batch_resilient_par")
        .field("densities", densities.len())
        .field("solver", solver.name());
    let per_density: Vec<Vec<JobOutcome>> = densities
        .par_iter()
        .map_indexed(|di, density| density_jobs(solver, device, density, config, di))
        .collect();
    let mut report = GenerateReport::default();
    for outcome in per_density.into_iter().flatten() {
        absorb_outcome(&mut report, outcome);
    }
    log_report(&report, span.elapsed().as_secs_f64());
    report
}

/// [`label_batch_resilient_par_with`] using the exact FDFD solver.
pub fn label_batch_resilient_par(
    device: &DeviceSpec,
    densities: &[maps_invdes::Patch],
    config: &GenerateConfig,
) -> GenerateReport {
    let solver = FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(device.grid().dl));
    label_batch_resilient_par_with(&solver, device, densities, config)
}

/// [`label_batch_resilient_with`] using the exact FDFD solver.
pub fn label_batch_resilient(
    device: &DeviceSpec,
    densities: &[maps_invdes::Patch],
    config: &GenerateConfig,
) -> GenerateReport {
    let solver = FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(device.grid().dl));
    label_batch_resilient_with(&solver, device, densities, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, DeviceResolution};
    use maps_core::{FaultInjectingSolver, FaultPlan, InjectedFault};

    #[test]
    fn fault_free_resilient_batch_matches_parallel_path_sample_count() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        let densities = vec![
            maps_invdes::Patch::constant(
                dev.problem.design_size.0,
                dev.problem.design_size.1,
                0.5,
            );
            2
        ];
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: true,
            ..Default::default()
        };
        let report = label_batch_resilient(&dev, &densities, &cfg);
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        assert_eq!(
            report.ok.len(),
            crate::generate::label_batch(&dev, &densities, &cfg)
                .unwrap()
                .len()
        );
        for s in &report.ok {
            assert!(s.labels.maxwell_residual < 1e-9);
        }
    }

    /// Fails deterministically as a function of the *job inputs* (eps,
    /// source, omega), so sequential and parallel schedules fault the same
    /// jobs — the property a call-indexed [`FaultPlan`] cannot provide
    /// under parallel execution.
    struct ContentKeyedFaultSolver {
        inner: FdfdSolver,
        modulus: u64,
    }

    impl ContentKeyedFaultSolver {
        fn job_hash(eps: &RealField2d, source: &ComplexField2d, omega: f64) -> u64 {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            let mut mix = |bits: u64| {
                h = (h ^ bits).wrapping_mul(0x0000_0100_0000_01B3);
            };
            for v in eps.as_slice() {
                mix(v.to_bits());
            }
            for z in source.as_slice() {
                mix(z.re.to_bits());
                mix(z.im.to_bits());
            }
            mix(omega.to_bits());
            h
        }

        fn should_fail(&self, eps: &RealField2d, source: &ComplexField2d, omega: f64) -> bool {
            Self::job_hash(eps, source, omega).is_multiple_of(self.modulus)
        }
    }

    impl FieldSolver for ContentKeyedFaultSolver {
        fn solve_ez(
            &self,
            eps_r: &RealField2d,
            source: &ComplexField2d,
            omega: f64,
        ) -> Result<ComplexField2d, maps_core::SolveFieldError> {
            if self.should_fail(eps_r, source, omega) {
                return Err(maps_core::SolveFieldError::Numerical {
                    detail: "content-keyed injected fault".into(),
                });
            }
            self.inner.solve_ez(eps_r, source, omega)
        }

        fn solve_adjoint_ez(
            &self,
            eps_r: &RealField2d,
            rhs: &ComplexField2d,
            omega: f64,
        ) -> Result<ComplexField2d, maps_core::SolveFieldError> {
            self.inner.solve_adjoint_ez(eps_r, rhs, omega)
        }

        fn name(&self) -> &str {
            "content-keyed-fault"
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_to_sequential_under_fault_injection() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        // Distinct densities so jobs have distinct fingerprints and the
        // fault hash spreads.
        let densities: Vec<maps_invdes::Patch> = (0..8)
            .map(|i| {
                maps_invdes::Patch::constant(
                    dev.problem.design_size.0,
                    dev.problem.design_size.1,
                    0.2 + 0.08 * i as f64,
                )
            })
            .collect();
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            with_adjoint_source_samples: true,
            ..Default::default()
        };
        let solver = ContentKeyedFaultSolver {
            inner: FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(dev.grid().dl)),
            modulus: 5, // ≈20% of jobs fault
        };
        let sequential = label_batch_resilient_with(&solver, &dev, &densities, &cfg);
        let parallel = label_batch_resilient_par_with(&solver, &dev, &densities, &cfg);
        assert!(
            !sequential.quarantined.is_empty(),
            "fault plan must actually fire for the test to mean anything"
        );
        assert!(!sequential.ok.is_empty());
        // Byte-identity: every sample and every quarantine record matches
        // field-for-field, in the same deterministic job order.
        assert_eq!(sequential.ok, parallel.ok);
        assert_eq!(sequential.quarantined, parallel.quarantined);
    }

    #[test]
    fn injected_failures_are_quarantined_not_fatal() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        let densities = vec![
            maps_invdes::Patch::constant(
                dev.problem.design_size.0,
                dev.problem.design_size.1,
                0.5,
            );
            3
        ];
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            ..Default::default()
        };
        // One solve per job (no adjoint) → call index == job index.
        let faulty = FaultInjectingSolver::new(
            FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(dev.grid().dl)),
            FaultPlan::new().fail_at(1, InjectedFault::Error),
        );
        let report = label_batch_resilient_with(&faulty, &dev, &densities, &cfg);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].density_index, 1);
        assert!(!report.quarantined[0].adjoint_excitation);
        assert_eq!(report.ok.len(), report.total_jobs() - 1);
        assert!(report.quarantine_rate() > 0.0);
    }
}
