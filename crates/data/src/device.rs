//! The benchmark device zoo (paper Fig. 2 / Table III).
//!
//! Six inverse-designed photonic device families of increasing difficulty:
//! waveguide bend, crossing, optical diode (asymmetric mode converter),
//! mode-division multiplexer (MDM), wavelength-division multiplexer (WDM),
//! and an active thermo-optic switch (TOS). Each builder returns a
//! [`DesignProblem`] plus the port list and source variations used for rich
//! labelling.

use maps_core::materials::{SILICA_EPS, SILICON_EPS};
use maps_core::{Axis, Direction, Grid2d, Port, RealField2d, Rect, Shape};
use maps_invdes::{DesignProblem, ObjectiveTerm};
use serde::{Deserialize, Serialize};

/// The device families in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// 90° waveguide bend.
    Bending,
    /// Waveguide crossing.
    Crossing,
    /// Optical diode: forward-only transmission via asymmetric mode
    /// conversion (the standard linear-passive implementation).
    OpticalDiode,
    /// Mode-division multiplexer.
    Mdm,
    /// Wavelength-division multiplexer.
    Wdm,
    /// Active thermo-optic switch.
    Tos,
}

impl DeviceKind {
    /// All device kinds, simplest first.
    pub fn all() -> [DeviceKind; 6] {
        [
            DeviceKind::Bending,
            DeviceKind::Crossing,
            DeviceKind::OpticalDiode,
            DeviceKind::Mdm,
            DeviceKind::Wdm,
            DeviceKind::Tos,
        ]
    }

    /// Snake-case name used in dataset files and tables.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::Bending => "bending",
            DeviceKind::Crossing => "crossing",
            DeviceKind::OpticalDiode => "optical_diode",
            DeviceKind::Mdm => "mdm",
            DeviceKind::Wdm => "wdm",
            DeviceKind::Tos => "tos",
        }
    }

    /// Builds the device at the given resolution.
    pub fn build(&self, res: DeviceResolution) -> DeviceSpec {
        match self {
            DeviceKind::Bending => bending(res),
            DeviceKind::Crossing => crossing(res),
            DeviceKind::OpticalDiode => optical_diode(res),
            DeviceKind::Mdm => mdm(res),
            DeviceKind::Wdm => wdm(res),
            DeviceKind::Tos => tos(res),
        }
    }
}

/// Grid resolution of a device build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceResolution {
    /// Cell size in µm. Must divide the fixed 4.0 µm domain
    /// (0.05 → 80 cells, 0.10 → 40 cells).
    pub dl: f64,
}

impl Default for DeviceResolution {
    fn default() -> Self {
        DeviceResolution { dl: 0.05 }
    }
}

impl DeviceResolution {
    /// The high-fidelity default (80 × 80 cells, ~9 points per wavelength
    /// in silicon).
    pub fn high() -> Self {
        Self::default()
    }

    /// The low-fidelity variant (40 × 40 cells, 2× coarser).
    pub fn low() -> Self {
        DeviceResolution { dl: 0.10 }
    }

    fn cells(&self) -> usize {
        (DOMAIN / self.dl).round() as usize
    }
}

/// Fixed domain edge length in µm.
const DOMAIN: f64 = 4.0;
/// Single-mode waveguide width in µm.
const WG: f64 = 0.48;
/// Multimode (two-mode) waveguide width in µm.
const WG_WIDE: f64 = 1.12;
/// Offset of ports from the domain edge in µm (outside the PML).
const PORT_INSET: f64 = 1.2;

/// One source variation for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceVariant {
    /// Which port of [`DeviceSpec::ports`] is excited.
    pub input_port: usize,
    /// Eigenmode launched.
    pub mode_index: usize,
    /// Vacuum wavelength (µm).
    pub wavelength: f64,
    /// Heater state (TOS only): `true` applies the thermo-optic shift.
    pub heater_on: bool,
}

/// A fully specified benchmark device.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Which family this is.
    pub kind: DeviceKind,
    /// The inverse-design problem (base ε, design window, objective).
    pub problem: DesignProblem,
    /// All ports, input first.
    pub ports: Vec<Port>,
    /// Source variations for rich-label generation.
    pub variants: Vec<SourceVariant>,
    /// Heater region and permittivity shift (TOS only).
    pub heater: Option<(Rect, f64)>,
}

impl DeviceSpec {
    /// The simulation grid.
    pub fn grid(&self) -> Grid2d {
        self.problem.grid()
    }

    /// Base permittivity with the heater state applied.
    pub fn base_eps_for_state(&self, heater_on: bool) -> RealField2d {
        let mut eps = self.problem.base_eps.clone();
        if heater_on {
            self.apply_heater(&mut eps);
        }
        eps
    }

    /// Adds the thermo-optic permittivity shift over the heater region.
    /// Call this *after* painting a design density — the heater overlaps
    /// the design window.
    pub fn apply_heater(&self, eps: &mut RealField2d) {
        if let Some((rect, delta)) = self.heater {
            let grid = eps.grid();
            let (xs, ys) = rect.cell_range(grid);
            for iy in ys {
                for ix in xs.clone() {
                    let v = eps.get(ix, iy);
                    eps.set(ix, iy, v + delta);
                }
            }
        }
    }
}

fn strip_h(eps: &mut RealField2d, y: f64, x0: f64, x1: f64, width: f64) {
    maps_core::paint(
        eps,
        &Shape::Rect(Rect::new(x0, y - width / 2.0, x1, y + width / 2.0)),
        SILICON_EPS,
    );
}

fn strip_v(eps: &mut RealField2d, x: f64, y0: f64, y1: f64, width: f64) {
    maps_core::paint(
        eps,
        &Shape::Rect(Rect::new(x - width / 2.0, y0, x + width / 2.0, y1)),
        SILICON_EPS,
    );
}

/// Design window: centre square of `frac` of the domain, snapped to cells.
fn center_window(grid: Grid2d, frac: f64) -> ((usize, usize), (usize, usize)) {
    let cells = (grid.nx as f64 * frac).round() as usize;
    let origin = (grid.nx - cells) / 2;
    ((origin, origin), (cells, cells))
}

fn window_rect(grid: Grid2d, origin: (usize, usize), size: (usize, usize)) -> Rect {
    Rect::new(
        origin.0 as f64 * grid.dl,
        origin.1 as f64 * grid.dl,
        (origin.0 + size.0) as f64 * grid.dl,
        (origin.1 + size.1) as f64 * grid.dl,
    )
}

fn bending(res: DeviceResolution) -> DeviceSpec {
    let n = res.cells();
    let grid = Grid2d::new(n, n, res.dl);
    let c = DOMAIN / 2.0;
    let mut eps = RealField2d::constant(grid, SILICA_EPS);
    let (origin, size) = center_window(grid, 0.25);
    let win = window_rect(grid, origin, size);
    strip_h(&mut eps, c, 0.0, win.x0, WG); // input from the left
    strip_v(&mut eps, c, win.y1, DOMAIN, WG); // output to the top
    let input = Port::new((PORT_INSET, c), WG, Axis::X, Direction::Positive);
    let output = Port::new((c, DOMAIN - PORT_INSET), WG, Axis::Y, Direction::Positive);
    DeviceSpec {
        kind: DeviceKind::Bending,
        problem: DesignProblem {
            base_eps: eps,
            design_origin: origin,
            design_size: size,
            eps_min: SILICA_EPS,
            eps_max: SILICON_EPS,
            wavelength: 1.55,
            input_port: input,
            terms: vec![ObjectiveTerm {
                port: output,
                weight: 1.0,
            }],
            normalization: 1.0,
        },
        ports: vec![input, output],
        variants: vec![SourceVariant {
            input_port: 0,
            mode_index: 0,
            wavelength: 1.55,
            heater_on: false,
        }],
        heater: None,
    }
}

fn crossing(res: DeviceResolution) -> DeviceSpec {
    let n = res.cells();
    let grid = Grid2d::new(n, n, res.dl);
    let c = DOMAIN / 2.0;
    let mut eps = RealField2d::constant(grid, SILICA_EPS);
    let (origin, size) = center_window(grid, 0.25);
    let win = window_rect(grid, origin, size);
    strip_h(&mut eps, c, 0.0, win.x0, WG);
    strip_h(&mut eps, c, win.x1, DOMAIN, WG);
    strip_v(&mut eps, c, 0.0, win.y0, WG);
    strip_v(&mut eps, c, win.y1, DOMAIN, WG);
    let input = Port::new((PORT_INSET, c), WG, Axis::X, Direction::Positive);
    let through = Port::new((DOMAIN - PORT_INSET, c), WG, Axis::X, Direction::Positive);
    let up = Port::new((c, DOMAIN - PORT_INSET), WG, Axis::Y, Direction::Positive);
    let down = Port::new((c, PORT_INSET), WG, Axis::Y, Direction::Negative);
    DeviceSpec {
        kind: DeviceKind::Crossing,
        problem: DesignProblem {
            base_eps: eps,
            design_origin: origin,
            design_size: size,
            eps_min: SILICA_EPS,
            eps_max: SILICON_EPS,
            wavelength: 1.55,
            input_port: input,
            terms: vec![
                ObjectiveTerm {
                    port: through,
                    weight: 1.0,
                },
                ObjectiveTerm {
                    port: up,
                    weight: -0.5, // crosstalk penalty
                },
                ObjectiveTerm {
                    port: down,
                    weight: -0.5,
                },
            ],
            normalization: 1.0,
        },
        ports: vec![input, through, up, down],
        variants: vec![SourceVariant {
            input_port: 0,
            mode_index: 0,
            wavelength: 1.55,
            heater_on: false,
        }],
        heater: None,
    }
}

fn optical_diode(res: DeviceResolution) -> DeviceSpec {
    let n = res.cells();
    let grid = Grid2d::new(n, n, res.dl);
    let c = DOMAIN / 2.0;
    let mut eps = RealField2d::constant(grid, SILICA_EPS);
    let (origin, size) = center_window(grid, 0.3);
    let win = window_rect(grid, origin, size);
    // Narrow single-mode input; wide two-mode output (asymmetric mode
    // converter, the linear-passive diode construction).
    strip_h(&mut eps, c, 0.0, win.x0, WG);
    maps_core::paint(
        &mut eps,
        &Shape::Rect(Rect::new(
            win.x1,
            c - WG_WIDE / 2.0,
            DOMAIN,
            c + WG_WIDE / 2.0,
        )),
        SILICON_EPS,
    );
    let input = Port::new((PORT_INSET, c), WG, Axis::X, Direction::Positive);
    let out_mode1 = Port::new(
        (DOMAIN - PORT_INSET, c),
        WG_WIDE,
        Axis::X,
        Direction::Positive,
    )
    .with_mode(1);
    let out_mode0 = Port::new(
        (DOMAIN - PORT_INSET, c),
        WG_WIDE,
        Axis::X,
        Direction::Positive,
    );
    DeviceSpec {
        kind: DeviceKind::OpticalDiode,
        problem: DesignProblem {
            base_eps: eps,
            design_origin: origin,
            design_size: size,
            eps_min: SILICA_EPS,
            eps_max: SILICON_EPS,
            wavelength: 1.55,
            input_port: input,
            terms: vec![
                ObjectiveTerm {
                    port: out_mode1,
                    weight: 1.0, // convert into the antisymmetric mode
                },
                ObjectiveTerm {
                    port: out_mode0,
                    weight: -0.5, // suppress the symmetric mode
                },
            ],
            normalization: 1.0,
        },
        ports: vec![input, out_mode1, out_mode0],
        variants: vec![SourceVariant {
            input_port: 0,
            mode_index: 0,
            wavelength: 1.55,
            heater_on: false,
        }],
        heater: None,
    }
}

fn mdm(res: DeviceResolution) -> DeviceSpec {
    let n = res.cells();
    let grid = Grid2d::new(n, n, res.dl);
    let c = DOMAIN / 2.0;
    let mut eps = RealField2d::constant(grid, SILICA_EPS);
    let (origin, size) = center_window(grid, 0.35);
    let win = window_rect(grid, origin, size);
    // Wide two-mode bus in; two single-mode guides out at different heights.
    maps_core::paint(
        &mut eps,
        &Shape::Rect(Rect::new(0.0, c - WG_WIDE / 2.0, win.x0, c + WG_WIDE / 2.0)),
        SILICON_EPS,
    );
    let y_hi = c + 0.8;
    let y_lo = c - 0.8;
    strip_h(&mut eps, y_hi, win.x1, DOMAIN, WG);
    strip_h(&mut eps, y_lo, win.x1, DOMAIN, WG);
    let input = Port::new((PORT_INSET, c), WG_WIDE, Axis::X, Direction::Positive);
    let out_hi = Port::new(
        (DOMAIN - PORT_INSET, y_hi),
        WG,
        Axis::X,
        Direction::Positive,
    );
    let out_lo = Port::new(
        (DOMAIN - PORT_INSET, y_lo),
        WG,
        Axis::X,
        Direction::Positive,
    );
    DeviceSpec {
        kind: DeviceKind::Mdm,
        problem: DesignProblem {
            base_eps: eps,
            design_origin: origin,
            design_size: size,
            eps_min: SILICA_EPS,
            eps_max: SILICON_EPS,
            wavelength: 1.55,
            input_port: input,
            // Route the fundamental mode to the upper branch while keeping
            // the lower branch dark; the mode-1 routing is exercised by the
            // second source variant in the dataset.
            terms: vec![
                ObjectiveTerm {
                    port: out_hi,
                    weight: 1.0,
                },
                ObjectiveTerm {
                    port: out_lo,
                    weight: -0.5,
                },
            ],
            normalization: 1.0,
        },
        ports: vec![input, out_hi, out_lo],
        variants: vec![
            SourceVariant {
                input_port: 0,
                mode_index: 0,
                wavelength: 1.55,
                heater_on: false,
            },
            SourceVariant {
                input_port: 0,
                mode_index: 1,
                wavelength: 1.55,
                heater_on: false,
            },
        ],
        heater: None,
    }
}

fn wdm(res: DeviceResolution) -> DeviceSpec {
    let n = res.cells();
    let grid = Grid2d::new(n, n, res.dl);
    let c = DOMAIN / 2.0;
    let mut eps = RealField2d::constant(grid, SILICA_EPS);
    let (origin, size) = center_window(grid, 0.35);
    let win = window_rect(grid, origin, size);
    strip_h(&mut eps, c, 0.0, win.x0, WG);
    let y_hi = c + 0.8;
    let y_lo = c - 0.8;
    strip_h(&mut eps, y_hi, win.x1, DOMAIN, WG);
    strip_h(&mut eps, y_lo, win.x1, DOMAIN, WG);
    let input = Port::new((PORT_INSET, c), WG, Axis::X, Direction::Positive);
    let out_hi = Port::new(
        (DOMAIN - PORT_INSET, y_hi),
        WG,
        Axis::X,
        Direction::Positive,
    );
    let out_lo = Port::new(
        (DOMAIN - PORT_INSET, y_lo),
        WG,
        Axis::X,
        Direction::Positive,
    );
    DeviceSpec {
        kind: DeviceKind::Wdm,
        problem: DesignProblem {
            base_eps: eps,
            design_origin: origin,
            design_size: size,
            eps_min: SILICA_EPS,
            eps_max: SILICON_EPS,
            wavelength: 1.50, // optimize the short-λ channel to the top arm
            input_port: input,
            terms: vec![
                ObjectiveTerm {
                    port: out_hi,
                    weight: 1.0,
                },
                ObjectiveTerm {
                    port: out_lo,
                    weight: -0.5,
                },
            ],
            normalization: 1.0,
        },
        ports: vec![input, out_hi, out_lo],
        variants: vec![
            SourceVariant {
                input_port: 0,
                mode_index: 0,
                wavelength: 1.50,
                heater_on: false,
            },
            SourceVariant {
                input_port: 0,
                mode_index: 0,
                wavelength: 1.60,
                heater_on: false,
            },
        ],
        heater: None,
    }
}

fn tos(res: DeviceResolution) -> DeviceSpec {
    let n = res.cells();
    let grid = Grid2d::new(n, n, res.dl);
    let c = DOMAIN / 2.0;
    let mut eps = RealField2d::constant(grid, SILICA_EPS);
    let (origin, size) = center_window(grid, 0.35);
    let win = window_rect(grid, origin, size);
    strip_h(&mut eps, c, 0.0, win.x0, WG);
    let y_hi = c + 0.8;
    let y_lo = c - 0.8;
    strip_h(&mut eps, y_hi, win.x1, DOMAIN, WG);
    strip_h(&mut eps, y_lo, win.x1, DOMAIN, WG);
    let input = Port::new((PORT_INSET, c), WG, Axis::X, Direction::Positive);
    let out_hi = Port::new(
        (DOMAIN - PORT_INSET, y_hi),
        WG,
        Axis::X,
        Direction::Positive,
    );
    let out_lo = Port::new(
        (DOMAIN - PORT_INSET, y_lo),
        WG,
        Axis::X,
        Direction::Positive,
    );
    // A 75 K thermo-optic shift over the upper half of the design window:
    // Δε = 2·n·(dn/dT)·ΔT ≈ 2·3.48·1.8e−4·75 ≈ 0.094 — scaled up ~10× here
    // so the 2-D toy device switches visibly (documented substitution).
    let heater_rect = Rect::new(win.x0, c, win.x1, win.y1);
    let heater_delta = 0.94;
    DeviceSpec {
        kind: DeviceKind::Tos,
        problem: DesignProblem {
            base_eps: eps,
            design_origin: origin,
            design_size: size,
            eps_min: SILICA_EPS,
            eps_max: SILICON_EPS,
            wavelength: 1.55,
            input_port: input,
            terms: vec![
                ObjectiveTerm {
                    port: out_hi,
                    weight: 1.0,
                },
                ObjectiveTerm {
                    port: out_lo,
                    weight: -0.5,
                },
            ],
            normalization: 1.0,
        },
        ports: vec![input, out_hi, out_lo],
        variants: vec![
            SourceVariant {
                input_port: 0,
                mode_index: 0,
                wavelength: 1.55,
                heater_on: false,
            },
            SourceVariant {
                input_port: 0,
                mode_index: 0,
                wavelength: 1.55,
                heater_on: true,
            },
        ],
        heater: Some((heater_rect, heater_delta)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_build_at_both_fidelities() {
        for kind in DeviceKind::all() {
            for res in [DeviceResolution::high(), DeviceResolution::low()] {
                let dev = kind.build(res);
                let grid = dev.grid();
                assert_eq!(grid.nx, res.cells(), "{}", kind.name());
                // Design window inside the grid.
                let (ox, oy) = dev.problem.design_origin;
                let (sx, sy) = dev.problem.design_size;
                assert!(ox + sx <= grid.nx && oy + sy <= grid.ny);
                assert!(!dev.ports.is_empty());
                assert!(!dev.variants.is_empty());
            }
        }
    }

    #[test]
    fn device_sources_are_buildable() {
        // Every device's input port must guide the requested mode.
        for kind in DeviceKind::all() {
            let dev = kind.build(DeviceResolution::high());
            for variant in &dev.variants {
                let port = dev.ports[variant.input_port].with_mode(variant.mode_index);
                let eps = dev.base_eps_for_state(variant.heater_on);
                let omega = maps_core::omega_for_wavelength(variant.wavelength);
                let src = maps_fdfd::ModeSource::new(&eps, &port, omega);
                assert!(
                    src.is_ok(),
                    "{}: variant {variant:?} has no guided mode",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn heater_shifts_permittivity() {
        let dev = DeviceKind::Tos.build(DeviceResolution::high());
        let cold = dev.base_eps_for_state(false);
        let hot = dev.base_eps_for_state(true);
        let diff: f64 = hot
            .as_slice()
            .iter()
            .zip(cold.as_slice())
            .map(|(h, c)| (h - c).abs())
            .sum();
        assert!(diff > 0.0, "heater must change the permittivity");
        // Non-heater devices are state-independent.
        let bend = DeviceKind::Bending.build(DeviceResolution::high());
        assert_eq!(
            bend.base_eps_for_state(false),
            bend.base_eps_for_state(true)
        );
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            DeviceKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
