//! Dataset container with device-level train/test splitting and JSON
//! persistence.

use maps_core::Sample;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::path::Path;

/// A labeled dataset of simulated designs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Distinct device ids, sorted.
    pub fn device_ids(&self) -> Vec<String> {
        let set: BTreeSet<String> = self.samples.iter().map(|s| s.device_id.clone()).collect();
        set.into_iter().collect()
    }

    /// Splits **at the device level** (the paper's hierarchical loader rule
    /// preventing test-set leakage): all samples of one device land on the
    /// same side. `train_fraction` applies to the device list, which is
    /// partitioned deterministically by a seeded shuffle.
    pub fn split_by_device(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction must be in [0, 1]"
        );
        let mut ids = self.device_ids();
        // Deterministic Fisher–Yates with an xorshift generator.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        for i in (1..ids.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        let n_train = ((ids.len() as f64) * train_fraction).round() as usize;
        let train_ids: BTreeSet<&String> = ids.iter().take(n_train).collect();
        let (train, test): (Vec<Sample>, Vec<Sample>) = self
            .samples
            .iter()
            .cloned()
            .partition(|s| train_ids.contains(&s.device_id));
        (Dataset::from_samples(train), Dataset::from_samples(test))
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), Box<dyn std::error::Error>> {
        let mut file = std::fs::File::create(path)?;
        let body = serde_json::to_vec(self)?;
        file.write_all(&body)?;
        Ok(())
    }

    /// Loads from a JSON file written by [`Dataset::save_json`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, Box<dyn std::error::Error>> {
        let mut body = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut body)?;
        Ok(serde_json::from_slice(&body)?)
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Dataset::from_samples(iter.into_iter().collect())
    }
}

impl Extend<Sample> for Dataset {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::{ComplexField2d, EmFields, Fidelity, Grid2d, RealField2d, RichLabels};

    fn dummy_sample(device_id: &str) -> Sample {
        let g = Grid2d::new(2, 2, 0.1);
        let z = ComplexField2d::zeros(g);
        Sample {
            device_id: device_id.to_string(),
            device_kind: "bending".to_string(),
            eps_r: RealField2d::constant(g, 1.0),
            density: None,
            source: z.clone(),
            labels: RichLabels {
                fidelity: Fidelity::High,
                wavelength: 1.55,
                input_port: 0,
                input_mode: 0,
                transmissions: vec![],
                reflection: 0.0,
                radiation: 0.0,
                fields: EmFields {
                    ez: z.clone(),
                    hx: z.clone(),
                    hy: z,
                },
                adjoint_gradient: None,
                maxwell_residual: 0.0,
            },
        }
    }

    #[test]
    fn split_never_leaks_devices() {
        let samples: Vec<Sample> = (0..10)
            .flat_map(|d| (0..3).map(move |_| dummy_sample(&format!("dev-{d}"))))
            .collect();
        let ds = Dataset::from_samples(samples);
        let (train, test) = ds.split_by_device(0.7, 11);
        assert_eq!(train.len() + test.len(), 30);
        let train_ids: BTreeSet<_> = train.samples.iter().map(|s| &s.device_id).collect();
        let test_ids: BTreeSet<_> = test.samples.iter().map(|s| &s.device_id).collect();
        assert!(train_ids.is_disjoint(&test_ids), "device leakage");
        // All 3 samples of each device stay together.
        assert_eq!(train.len() % 3, 0);
        assert_eq!(test.len() % 3, 0);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds: Dataset = (0..8).map(|d| dummy_sample(&format!("d{d}"))).collect();
        let (a, _) = ds.split_by_device(0.5, 1);
        let (b, _) = ds.split_by_device(0.5, 1);
        assert_eq!(a.device_ids(), b.device_ids());
    }

    #[test]
    fn json_roundtrip() {
        let ds: Dataset = (0..2).map(|d| dummy_sample(&format!("d{d}"))).collect();
        let dir = std::env::temp_dir().join("maps_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.samples[0].device_id, "d0");
        std::fs::remove_file(path).ok();
    }
}
