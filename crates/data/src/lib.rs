//! # maps-data
//!
//! MAPS-Data: the dataset acquisition framework. A zoo of six benchmark
//! photonic devices (bend, crossing, optical diode, MDM, WDM, thermo-optic
//! switch), configurable sampling strategies (random, optimization-
//! trajectory, perturbed-trajectory), multi-fidelity paired generation, and
//! rich labels — transmission/reflection/radiation, full fields, adjoint
//! gradients, and Maxwell-residual self-checks — per sample.

pub mod dataset;
pub mod device;
pub mod fidelity;
pub mod generate;
pub mod resilient;
pub mod sampling;

pub use dataset::Dataset;
pub use device::{DeviceKind, DeviceResolution, DeviceSpec, SourceVariant};
pub use fidelity::{paired_devices, resolution_for, richardson};
pub use generate::{
    adjoint_source_sample, label_batch, label_sample, paint_density, GenerateConfig, GenerateError,
};
pub use resilient::{
    adjoint_source_sample_with, label_batch_resilient, label_batch_resilient_par,
    label_batch_resilient_par_with, label_batch_resilient_with, label_sample_with, GenerateReport,
    QuarantinedSample,
};
pub use sampling::{sample_densities, SamplerConfig, SamplingStrategy};
