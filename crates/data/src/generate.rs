//! Rich-label generation: turning sampled densities into dataset samples.
//!
//! Every density is simulated with the exact FDFD solver at the requested
//! fidelity; the sample records the permittivity, source, full fields,
//! per-port transmissions, reflection, radiation, the adjoint gradient
//! under the device objective, and the Maxwell residual self-check.
//!
//! All source variants and adjoint-excitation solves of one density share
//! the same permittivity map, so they reuse a single banded LU through the
//! `maps_fdfd::factor_cache` — one factorization per (density, fidelity)
//! rather than per solve.

use crate::device::{DeviceSpec, SourceVariant};
use maps_core::{Fidelity, RealField2d, Sample};
use maps_fdfd::{FdfdSolver, ModeError, ModeMonitor, PowerObjective};
use maps_invdes::Patch;
use rayon::prelude::*;

/// Configuration of label generation.
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Fidelity level recorded on the samples (the caller picks the device
    /// resolution to match).
    pub fidelity: Fidelity,
    /// Compute and attach the adjoint gradient label.
    pub with_adjoint: bool,
    /// Compute and attach the Maxwell residual self-check.
    pub with_residual: bool,
    /// Additionally emit one sample per density whose source is the
    /// *adjoint* excitation of the device objective (a line source at the
    /// output ports). Neural solvers that must answer adjoint queries
    /// during inverse design (§IV-D) need these in their training
    /// distribution — a forward-only dataset leaves the adjoint solve
    /// out of distribution.
    pub with_adjoint_source_samples: bool,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            fidelity: Fidelity::High,
            with_adjoint: true,
            with_residual: true,
            with_adjoint_source_samples: false,
        }
    }
}

/// Errors from label generation.
#[derive(Debug)]
#[non_exhaustive]
pub enum GenerateError {
    /// A port guided no eigenmode.
    Mode(ModeError),
    /// A field solve failed.
    Solve(maps_core::SolveFieldError),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::Mode(e) => write!(f, "mode solver: {e}"),
            GenerateError::Solve(e) => write!(f, "field solver: {e}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<ModeError> for GenerateError {
    fn from(e: ModeError) -> Self {
        GenerateError::Mode(e)
    }
}

impl From<maps_core::SolveFieldError> for GenerateError {
    fn from(e: maps_core::SolveFieldError) -> Self {
        GenerateError::Solve(e)
    }
}

/// Simulates one density under one source variant and extracts rich labels.
///
/// Delegates to [`crate::resilient::label_sample_with`] with the exact FDFD
/// solver, so the sample's forward and adjoint solves flow through the
/// batched solve plane (grouped substitution sweeps against one cached
/// factorization per density and frequency).
///
/// # Errors
///
/// Returns [`GenerateError`] when mode solving or the field solve fails.
pub fn label_sample(
    device: &DeviceSpec,
    density: &Patch,
    variant: &SourceVariant,
    config: &GenerateConfig,
    sample_index: usize,
) -> Result<Sample, GenerateError> {
    let solver = FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(device.grid().dl));
    crate::resilient::label_sample_with(&solver, device, density, variant, config, sample_index)
}

/// Paints a design density into the device's design window.
pub fn paint_density(eps: &mut RealField2d, device: &DeviceSpec, density: &Patch) {
    let (ox, oy) = device.problem.design_origin;
    let p = &device.problem;
    for py in 0..density.ny() {
        for px in 0..density.nx() {
            let v = p.eps_min + (p.eps_max - p.eps_min) * density.get(px, py);
            eps.set(ox + px, oy + py, v);
        }
    }
}

pub(crate) fn build_objective(
    device: &DeviceSpec,
    eps: &RealField2d,
    omega: f64,
) -> Result<PowerObjective, ModeError> {
    let mut obj = PowerObjective::new();
    for term in &device.problem.terms {
        let monitor = ModeMonitor::new(eps, &term.port, omega)?;
        obj = obj.with_term(
            monitor.outgoing_functional(),
            term.weight / device.problem.normalization,
        );
    }
    Ok(obj)
}

/// Simulates the *adjoint excitation* of a density: the source is the
/// device objective's adjoint right-hand side (converted to an equivalent
/// current via `J = i·rhs/ω`), and the recorded field is its forward
/// solution — which, by the interior reciprocity of the SC-PML operator,
/// equals the true adjoint field where gradients are consumed.
///
/// The emitted sample shares the `device_id` of the corresponding forward
/// sample so device-level splits keep the pair together.
///
/// # Errors
///
/// Returns [`GenerateError`] when mode solving or a field solve fails.
pub fn adjoint_source_sample(
    device: &DeviceSpec,
    density: &Patch,
    variant: &SourceVariant,
    config: &GenerateConfig,
    sample_index: usize,
) -> Result<Sample, GenerateError> {
    let solver = FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(device.grid().dl));
    crate::resilient::adjoint_source_sample_with(
        &solver,
        device,
        density,
        variant,
        config,
        sample_index,
    )
}

/// Labels a batch of densities in parallel (every source variant of the
/// device is applied to every density; adjoint-source samples are appended
/// when configured).
///
/// # Errors
///
/// Returns the first [`GenerateError`] encountered.
pub fn label_batch(
    device: &DeviceSpec,
    densities: &[Patch],
    config: &GenerateConfig,
) -> Result<Vec<Sample>, GenerateError> {
    let jobs: Vec<(usize, &Patch, &SourceVariant, bool)> = densities
        .iter()
        .enumerate()
        .flat_map(|(i, d)| {
            device.variants.iter().flat_map(move |v| {
                let mut kinds = vec![(i, d, v, false)];
                if config.with_adjoint_source_samples {
                    kinds.push((i, d, v, true));
                }
                kinds
            })
        })
        .collect();
    let fidelity = match config.fidelity {
        Fidelity::Low => "low",
        Fidelity::High => "high",
    };
    let span = maps_obs::span("data.label_batch")
        .field("jobs", jobs.len())
        .field("fidelity", fidelity);
    let result: Result<Vec<Sample>, GenerateError> = jobs
        .par_iter()
        .map(|(i, d, v, adjoint)| {
            if *adjoint {
                adjoint_source_sample(device, d, v, config, *i)
            } else {
                label_sample(device, d, v, config, *i)
            }
        })
        .collect();
    if let Ok(samples) = &result {
        let elapsed = span.elapsed().as_secs_f64();
        maps_obs::counter(&format!("data.samples.{fidelity}")).add(samples.len() as u64);
        if elapsed > 0.0 {
            maps_obs::histogram(&format!("data.samples_per_sec.{fidelity}"))
                .record(samples.len() as f64 / elapsed);
        }
        maps_obs::info!(
            "labeled {} {fidelity}-fidelity samples in {elapsed:.2}s",
            samples.len()
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, DeviceResolution};
    use maps_invdes::InitStrategy;

    #[test]
    fn labels_are_physically_consistent() {
        let mut dev = DeviceKind::Bending.build(DeviceResolution::low());
        dev.problem.calibrate(&FdfdSolver::new()).unwrap();
        let density = InitStrategy::TransmissionStrip {
            background: 0.0,
            strip: 1.0,
            half_height_frac: 0.25,
        }
        .build(dev.problem.design_size.0, dev.problem.design_size.1);
        let sample = label_sample(
            &dev,
            &density,
            &dev.variants[0],
            &GenerateConfig::default(),
            0,
        )
        .unwrap();
        // The solve satisfies Maxwell.
        assert!(sample.labels.maxwell_residual < 1e-9);
        // Powers are non-negative and bounded (normalized by injection).
        assert!(sample.labels.reflection >= 0.0);
        for t in &sample.labels.transmissions {
            assert!(t.power >= 0.0);
        }
        // Adjoint gradient attached and sized like the design window.
        let g = sample.labels.adjoint_gradient.as_ref().unwrap();
        assert_eq!(
            (g.grid().nx, g.grid().ny),
            (dev.problem.design_size.0, dev.problem.design_size.1)
        );
        assert!(g.as_slice().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn batch_covers_all_variants() {
        let dev = DeviceKind::Wdm.build(DeviceResolution::low());
        let densities = vec![
            maps_invdes::Patch::constant(
                dev.problem.design_size.0,
                dev.problem.design_size.1,
                0.5,
            );
            2
        ];
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            ..Default::default()
        };
        let samples = label_batch(&dev, &densities, &cfg).unwrap();
        // 2 densities × 2 wavelengths.
        assert_eq!(samples.len(), 4);
        let wavelengths: std::collections::HashSet<u64> = samples
            .iter()
            .map(|s| (s.labels.wavelength * 1000.0) as u64)
            .collect();
        assert_eq!(wavelengths.len(), 2);
    }

    #[test]
    fn adjoint_source_samples_are_valid_forward_problems() {
        let dev = DeviceKind::Bending.build(DeviceResolution::low());
        let density =
            maps_invdes::Patch::constant(dev.problem.design_size.0, dev.problem.design_size.1, 0.6);
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: true,
            with_adjoint_source_samples: true,
            ..Default::default()
        };
        let samples = label_batch(&dev, &[density], &cfg).unwrap();
        // One forward + one adjoint-excitation sample.
        assert_eq!(samples.len(), 2);
        let fwd = &samples[0];
        let adj = &samples[1];
        assert_eq!(fwd.device_id, adj.device_id, "pair shares the device id");
        // The adjoint sample's field satisfies Maxwell for its own source.
        assert!(
            adj.labels.maxwell_residual < 1e-9,
            "residual {}",
            adj.labels.maxwell_residual
        );
        // Its source is a line excitation at the objective port, not the
        // input mode source.
        assert!(fwd.source != adj.source);
        assert!(adj.source.norm() > 0.0);
    }

    #[test]
    fn tos_states_change_fields() {
        let dev = DeviceKind::Tos.build(DeviceResolution::low());
        let density =
            maps_invdes::Patch::constant(dev.problem.design_size.0, dev.problem.design_size.1, 1.0);
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            ..Default::default()
        };
        let cold = label_sample(&dev, &density, &dev.variants[0], &cfg, 0).unwrap();
        let hot = label_sample(&dev, &density, &dev.variants[1], &cfg, 0).unwrap();
        let dist = cold
            .labels
            .fields
            .ez
            .normalized_l2_distance(&hot.labels.fields.ez);
        assert!(dist > 0.01, "heater state should alter the field: {dist}");
    }
}
