//! Multi-fidelity helpers (paper §III-A3).
//!
//! Low-fidelity samples are simulated on a 2× coarser grid; Richardson
//! extrapolation combines a coarse/fine observable pair into a higher-order
//! estimate, demonstrating how cheap data refines expensive data.

use maps_core::Fidelity;

use crate::device::{DeviceKind, DeviceResolution, DeviceSpec};

/// Resolution for a fidelity level.
pub fn resolution_for(fidelity: Fidelity) -> DeviceResolution {
    match fidelity {
        Fidelity::High => DeviceResolution::high(),
        Fidelity::Low => DeviceResolution::low(),
    }
}

/// Builds the same device at both fidelity levels `(low, high)` — the
/// paired data MAPS-Data ships for multi-fidelity research.
pub fn paired_devices(kind: DeviceKind) -> (DeviceSpec, DeviceSpec) {
    (
        kind.build(resolution_for(Fidelity::Low)),
        kind.build(resolution_for(Fidelity::High)),
    )
}

/// Richardson extrapolation of a scalar observable from a coarse (2h) and a
/// fine (h) simulation, assuming order-`p` convergence:
/// `f* ≈ f_h + (f_h − f_{2h}) / (2^p − 1)`.
pub fn richardson(coarse: f64, fine: f64, order: f64) -> f64 {
    fine + (fine - coarse) / (2.0f64.powf(order) - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn richardson_on_synthetic_h2_sequence() {
        // f(h) = L + c·h², with L = 1, c = 3: f(2h=0.2) и f(h=0.1).
        let l = 1.0;
        let f = |h: f64| l + 3.0 * h * h;
        let est = richardson(f(0.2), f(0.1), 2.0);
        assert!((est - l).abs() < 1e-12, "estimate {est}");
    }

    #[test]
    fn paired_devices_share_geometry() {
        let (low, high) = paired_devices(DeviceKind::Crossing);
        assert_eq!(low.grid().width(), high.grid().width());
        assert_eq!(low.grid().nx * 2, high.grid().nx);
        // Design windows cover the same physical area.
        let area = |d: &DeviceSpec| {
            let g = d.grid();
            (d.problem.design_size.0 as f64 * g.dl) * (d.problem.design_size.1 as f64 * g.dl)
        };
        assert!((area(&low) - area(&high)).abs() < 0.1);
    }

    /// End-to-end multi-fidelity check: the coarse and fine transmissions
    /// of the same structure agree within discretization error, and the
    /// Richardson estimate lies near the fine value.
    #[test]
    fn fidelity_pair_transmissions_are_consistent() {
        use crate::generate::{label_sample, GenerateConfig};
        use maps_invdes::InitStrategy;

        // The crossing has colinear input/through ports, so a straight
        // strip through the window transmits.
        let (mut low, mut high) = paired_devices(DeviceKind::Crossing);
        // Calibrate so transmissions read as fractions of injected power.
        for dev in [&mut low, &mut high] {
            let solver = maps_fdfd::FdfdSolver::with_pml(maps_fdfd::PmlConfig::auto(dev.grid().dl));
            dev.problem.calibrate(&solver).unwrap();
        }
        let (low, high) = (low, high);
        let strip = |d: &DeviceSpec| {
            InitStrategy::TransmissionStrip {
                background: 0.0,
                strip: 1.0,
                half_height_frac: 0.3,
            }
            .build(d.problem.design_size.0, d.problem.design_size.1)
        };
        let cfg = GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            ..Default::default()
        };
        let s_low = label_sample(&low, &strip(&low), &low.variants[0], &cfg, 0).unwrap();
        let s_high = label_sample(&high, &strip(&high), &high.variants[0], &cfg, 0).unwrap();
        let t_low = s_low.labels.total_transmission();
        let t_high = s_high.labels.total_transmission();
        assert!(t_low > 0.0 && t_high > 0.0);
        // Same physics, coarser mesh: same order of magnitude.
        let ratio = t_low / t_high;
        assert!(
            (0.2..5.0).contains(&ratio),
            "fidelities should agree roughly: low {t_low}, high {t_high}"
        );
        let est = richardson(t_low, t_high, 2.0);
        assert!(est.is_finite());
    }
}
