//! Property-based tests of the dataset framework.

use maps_core::Sample;
use maps_data::Dataset;
use proptest::prelude::*;

fn dummy_sample(device_id: String) -> Sample {
    let g = maps_core::Grid2d::new(2, 2, 0.1);
    let z = maps_core::ComplexField2d::zeros(g);
    Sample {
        device_id,
        device_kind: "bending".to_string(),
        eps_r: maps_core::RealField2d::constant(g, 1.0),
        density: None,
        source: z.clone(),
        labels: maps_core::RichLabels {
            fidelity: maps_core::Fidelity::High,
            wavelength: 1.55,
            input_port: 0,
            input_mode: 0,
            transmissions: vec![],
            reflection: 0.0,
            radiation: 0.0,
            fields: maps_core::EmFields {
                ez: z.clone(),
                hx: z.clone(),
                hy: z,
            },
            adjoint_gradient: None,
            maxwell_residual: 0.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Device-level splits never leak a device across the boundary and
    /// always partition the sample set, for any fraction and seed.
    #[test]
    fn split_partitions_without_leakage(
        n_devices in 1usize..20,
        samples_per in 1usize..5,
        frac in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let samples: Vec<Sample> = (0..n_devices)
            .flat_map(|d| (0..samples_per).map(move |_| dummy_sample(format!("dev-{d}"))))
            .collect();
        let ds = Dataset::from_samples(samples);
        let (train, test) = ds.split_by_device(frac, seed);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let train_ids: std::collections::BTreeSet<_> =
            train.samples.iter().map(|s| s.device_id.clone()).collect();
        let test_ids: std::collections::BTreeSet<_> =
            test.samples.iter().map(|s| s.device_id.clone()).collect();
        prop_assert!(train_ids.is_disjoint(&test_ids));
        // Samples of the same device always travel together.
        prop_assert_eq!(train.len() % samples_per, 0);
        prop_assert_eq!(test.len() % samples_per, 0);
    }

    /// Richardson extrapolation is exact for pure power-law error models.
    #[test]
    fn richardson_exact_for_power_law(
        limit in -10.0..10.0f64,
        coeff in -5.0..5.0f64,
        h in 0.01..0.5f64,
        order in 1.0..3.0f64,
    ) {
        let f = |step: f64| limit + coeff * step.powf(order);
        let est = maps_data::richardson(f(2.0 * h), f(h), order);
        prop_assert!((est - limit).abs() < 1e-8 * (1.0 + limit.abs() + coeff.abs()));
    }
}
