//! Property-based tests of the FDFD solver's physical invariants.

use maps_core::{ComplexField2d, FieldSolver, Grid2d, RealField2d};
use maps_fdfd::{FdfdSolver, PmlConfig};
use maps_linalg::Complex64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Linearity of Maxwell's equations: scaling the source scales the
    /// field; superposing sources superposes fields.
    #[test]
    fn solver_is_linear(
        eps_val in 1.0..12.0f64,
        amp_re in -2.0..2.0f64,
        amp_im in -2.0..2.0f64,
        x1 in 12usize..28,
        y1 in 12usize..28,
    ) {
        let grid = Grid2d::new(40, 40, 0.1);
        let eps = RealField2d::constant(grid, eps_val);
        let omega = maps_core::omega_for_wavelength(1.55);
        let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));

        let mut j1 = ComplexField2d::zeros(grid);
        j1.set(20, 20, Complex64::ONE);
        let mut j2 = ComplexField2d::zeros(grid);
        j2.set(x1, y1, Complex64::new(amp_re, amp_im));

        let e1 = solver.solve_ez(&eps, &j1, omega).unwrap();
        let e2 = solver.solve_ez(&eps, &j2, omega).unwrap();
        let mut jsum = ComplexField2d::zeros(grid);
        for (k, z) in jsum.as_mut_slice().iter_mut().enumerate() {
            *z = j1.as_slice()[k] + j2.as_slice()[k];
        }
        let esum = solver.solve_ez(&eps, &jsum, omega).unwrap();
        let expect = ComplexField2d::from_vec(
            grid,
            e1.as_slice().iter().zip(e2.as_slice()).map(|(a, b)| *a + *b).collect(),
        );
        prop_assert!(esum.normalized_l2_distance(&expect) < 1e-9);
    }

    /// The solution always satisfies the assembled system to solver
    /// precision, for arbitrary permittivity landscapes.
    #[test]
    fn residual_always_tiny(seed in 0u64..200) {
        let grid = Grid2d::new(36, 36, 0.1);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut eps = RealField2d::constant(grid, 1.0);
        for iy in 10..26 {
            for ix in 10..26 {
                eps.set(ix, iy, 1.0 + 11.0 * next());
            }
        }
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 18, Complex64::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0));
        prop_assume!(j.get(18, 18) != Complex64::ZERO);
        let omega = maps_core::omega_for_wavelength(1.3 + 0.5 * next());
        let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
        let ez = solver.solve_ez(&eps, &j, omega).unwrap();
        prop_assert!(solver.residual(&eps, &j, omega, &ez) < 1e-9);
    }

    /// Frequency scaling in vacuum: the radiated wavelength tracks ω.
    #[test]
    fn field_oscillates_faster_at_higher_frequency(lambda in 1.0..2.0f64) {
        let grid = Grid2d::new(48, 48, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
        let mut j = ComplexField2d::zeros(grid);
        j.set(24, 24, Complex64::ONE);
        let omega = maps_core::omega_for_wavelength(lambda);
        let ez = solver.solve_ez(&eps, &j, omega).unwrap();
        // Count sign changes of Re(Ez) along the midline right of source.
        let mut flips = 0;
        for ix in 26..44 {
            if ez.get(ix, 24).re.signum() != ez.get(ix + 1, 24).re.signum() {
                flips += 1;
            }
        }
        // Expected: 2 flips per wavelength over 18 cells·0.05 µm = 0.9 µm.
        let expected = 2.0 * 0.9 / lambda;
        prop_assert!(
            (flips as f64 - expected).abs() <= 2.0,
            "λ={lambda}: {flips} flips vs expected {expected:.1}"
        );
    }
}
