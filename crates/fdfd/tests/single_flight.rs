//! Concurrency pin for single-flight factorization coalescing.
//!
//! Hammers a factor cache from many threads with overlapping fingerprints
//! and asserts — via the span recorder, which only sees a `fdfd.factorize`
//! span from an actual leader — that no fingerprint is ever factorized
//! twice, no matter how the threads interleave.
//!
//! This file intentionally holds a single `#[test]`: the span recorder is
//! process-global, and a sibling test emitting `fdfd.factorize` spans in
//! parallel would poison the count.

use maps_core::{Grid2d, RealField2d};
use maps_fdfd::factor_cache::{fingerprint, FactorCache, Fingerprint};
use maps_fdfd::{FactorOutcome, PmlConfig};
use maps_linalg::{BandedMatrix, Complex64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

fn key_for(tag: f64) -> Fingerprint {
    let grid = Grid2d::new(4, 4, 0.1);
    let eps = RealField2d::constant(grid, tag);
    fingerprint(&eps, 4.0, &PmlConfig::default())
}

fn toy_banded(seed: f64) -> BandedMatrix {
    let mut a = BandedMatrix::zeros(6, 1, 1);
    for i in 0..6 {
        a.set(i, i, Complex64::new(3.0 + seed, 0.4));
    }
    a
}

#[test]
fn hammered_cache_never_double_factorizes() {
    maps_obs::recorder::enable();
    let cache = Arc::new(FactorCache::new(8));
    let distinct = 3usize;
    let threads = 12usize;
    let rounds = 5usize;
    let keys: Vec<Fingerprint> = (0..distinct).map(|t| key_for(10.0 + t as f64)).collect();
    let barrier = Arc::new(Barrier::new(threads));
    let assembled = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for worker in 0..threads {
            let cache = Arc::clone(&cache);
            let keys = keys.clone();
            let barrier = Arc::clone(&barrier);
            let assembled = Arc::clone(&assembled);
            s.spawn(move || {
                barrier.wait();
                for round in 0..rounds {
                    // Each worker walks the key set with a different phase,
                    // so every round overlaps different fingerprints across
                    // threads.
                    let key = keys[(worker + round) % keys.len()];
                    let seed = 10.0 + ((worker + round) % keys.len()) as f64;
                    let (lu, outcome) = cache
                        .factorize_coalesced(key, || {
                            assembled.fetch_add(1, Ordering::Relaxed);
                            // Hold the flight open long enough for peers to
                            // pile in behind the leader.
                            std::thread::sleep(std::time::Duration::from_millis(15));
                            toy_banded(seed)
                        })
                        .expect("factorize");
                    assert!(matches!(
                        outcome,
                        FactorOutcome::Hit | FactorOutcome::Leader | FactorOutcome::Follower
                    ));
                    std::hint::black_box(&lu);
                }
            });
        }
    });

    // Exactly one assembly per distinct fingerprint, and exactly one
    // `fdfd.factorize` span each (followers and hits emit none).
    assert_eq!(
        assembled.load(Ordering::Relaxed),
        distinct as u64,
        "each fingerprint must be assembled exactly once"
    );
    let spans = maps_obs::recorder::take();
    let factorize_spans = spans.iter().filter(|s| s.name == "fdfd.factorize").count();
    assert_eq!(
        factorize_spans, distinct,
        "span recorder must see one fdfd.factorize per distinct fingerprint"
    );

    let stats = cache.stats();
    assert_eq!(stats.misses, distinct as u64, "one leader per fingerprint");
    assert_eq!(
        stats.hits + stats.misses + stats.coalesced,
        (threads * rounds) as u64,
        "every lookup is a hit, a leader, or a follower"
    );
    assert!(
        stats.coalesced > 0,
        "with {threads} threads over {distinct} keys some lookups must coalesce"
    );
}
