//! The `InstrumentedSolver` wrapper must be invisible to the physics:
//! fields come out bit-identical to the bare solver while the global
//! telemetry counters advance.

use maps_core::{
    ComplexField2d, FieldSolver, Grid2d, InstrumentedSolver, RealField2d, SolveFieldError,
};
use maps_fdfd::{Backend, FdfdSolver};
use maps_linalg::{Complex64, IterativeOptions};

fn point_source(grid: Grid2d, ix: usize, iy: usize) -> ComplexField2d {
    let mut j = ComplexField2d::zeros(grid);
    j.set(ix, iy, Complex64::ONE);
    j
}

#[test]
fn wrapper_is_bit_identical_to_bare_fdfd() {
    let grid = Grid2d::new(48, 40, 0.08);
    let eps = RealField2d::constant(grid, 2.25);
    let j = point_source(grid, 24, 20);
    let omega = maps_core::omega_for_wavelength(1.55);

    let bare = FdfdSolver::new();
    let wrapped = InstrumentedSolver::new(FdfdSolver::new());
    assert_eq!(wrapped.name(), "instrumented(fdfd-direct)");

    let reg = maps_obs::global();
    let solves_before = reg.counter_value("solver.fdfd-direct.solves").unwrap_or(0);

    let ez_bare = bare.solve_ez(&eps, &j, omega).expect("bare solve");
    let ez_wrapped = wrapped.solve_ez(&eps, &j, omega).expect("wrapped solve");

    // Bit-identical, not just approximately equal: the wrapper must not
    // touch the numerics at all.
    let a = ez_bare.as_slice();
    let b = ez_wrapped.as_slice();
    assert_eq!(a.len(), b.len());
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "cell {k}: {x:?} != {y:?}"
        );
    }

    // Telemetry advanced: one more solve, and a latency sample recorded.
    let solves_after = reg
        .counter_value("solver.fdfd-direct.solves")
        .expect("solve counter registered");
    assert_eq!(solves_after, solves_before + 1);
    let latency = reg
        .histogram_snapshot("solver.fdfd-direct.solve_seconds")
        .expect("latency histogram registered");
    assert!(latency.count >= 1);
    assert!(latency.p50 > 0.0);
}

#[test]
fn wrapper_counts_failures_and_preserves_errors() {
    let grid = Grid2d::new(32, 32, 0.08);
    let eps = RealField2d::constant(grid, 2.25);
    // Mismatched grid between eps and source must error identically
    // through the wrapper.
    let j = point_source(Grid2d::new(16, 16, 0.08), 8, 8);
    let omega = maps_core::omega_for_wavelength(1.55);

    let wrapped = InstrumentedSolver::new(FdfdSolver::new());
    let reg = maps_obs::global();
    let failures_before = reg
        .counter_value("solver.fdfd-direct.failures")
        .unwrap_or(0);

    let err = wrapped.solve_ez(&eps, &j, omega).unwrap_err();
    assert!(matches!(err, SolveFieldError::GridMismatch { .. }));

    let failures_after = reg
        .counter_value("solver.fdfd-direct.failures")
        .expect("failure counter registered");
    assert_eq!(failures_after, failures_before + 1);
}

#[test]
fn iterative_backend_records_convergence_telemetry() {
    let grid = Grid2d::new(40, 32, 0.08);
    let eps = RealField2d::constant(grid, 1.0);
    let j = point_source(grid, 20, 16);
    let omega = maps_core::omega_for_wavelength(1.55);

    let solver = FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
        max_iterations: 4000,
        tolerance: 1e-8,
    }));
    let wrapped = InstrumentedSolver::new(solver);
    assert_eq!(wrapped.name(), "instrumented(fdfd-bicgstab)");

    let ez = wrapped.solve_ez(&eps, &j, omega).expect("iterative solve");
    assert!(ez.norm() > 0.0);

    let reg = maps_obs::global();
    // The solve must have left residual + iteration telemetry behind.
    let residual = reg
        .histogram_snapshot("fdfd.bicgstab.residual")
        .expect("residual histogram registered");
    assert!(residual.count >= 1);
    assert!(residual.max <= 1e-8 * 1.01, "residual {:.3e}", residual.max);
    let iters = reg
        .histogram_snapshot("fdfd.bicgstab.iterations")
        .expect("iteration histogram registered");
    assert!(iters.min >= 1.0);
}

#[test]
fn nonconvergence_error_carries_iteration_and_residual_detail() {
    let grid = Grid2d::new(48, 40, 0.08);
    // A high-contrast structure with a starved iteration budget cannot
    // converge; the error must say how far it got.
    let mut eps = RealField2d::constant(grid, 2.07);
    for iy in 12..28 {
        for ix in 8..40 {
            eps.set(ix, iy, 12.11);
        }
    }
    let j = point_source(grid, 24, 20);
    let omega = maps_core::omega_for_wavelength(1.55);

    let solver = FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
        max_iterations: 3,
        tolerance: 1e-14,
    }));
    let err = solver.solve_ez(&eps, &j, omega).unwrap_err();
    match err {
        SolveFieldError::Numerical { detail } => {
            assert!(detail.contains("3 iterations"), "detail: {detail}");
            assert!(detail.contains("tolerance"), "detail: {detail}");
            assert!(detail.contains("relative residual"), "detail: {detail}");
        }
        other => panic!("expected Numerical error, got {other:?}"),
    }
}
