//! # maps-fdfd
//!
//! A 2-D `Ez`-polarized finite-difference frequency-domain (FDFD) Maxwell
//! solver: Yee-grid Helmholtz operator with stretched-coordinate PML, slab
//! eigenmode sources and monitors, Poynting flux, and exact adjoint
//! gradients that reuse the forward LU factorization.
//!
//! This crate is the numerical substrate the MAPS paper's infrastructure
//! rests on (the role played by ceviche-style Python solvers in the
//! original).
//!
//! ```
//! use maps_core::{Axis, Direction, FieldSolver, Grid2d, Port, RealField2d, Rect, Shape};
//! use maps_fdfd::{FdfdSolver, ModeMonitor, ModeSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A straight silicon waveguide in silica.
//! let grid = Grid2d::new(80, 50, 0.08);
//! let yc = grid.height() / 2.0;
//! let mut eps = RealField2d::constant(grid, 2.07);
//! maps_core::paint(&mut eps, &Shape::Rect(Rect::new(0.0, yc - 0.24, grid.width(), yc + 0.24)), 12.11);
//!
//! let omega = maps_core::omega_for_wavelength(1.55);
//! let input = Port::new((1.4, yc), 0.48, Axis::X, Direction::Positive);
//! let source = ModeSource::new(&eps, &input, omega)?;
//! let ez = FdfdSolver::new().solve_ez(&eps, &source.current_density(grid), omega)?;
//!
//! let output = Port::new((grid.width() - 1.4, yc), 0.48, Axis::X, Direction::Positive);
//! let monitor = ModeMonitor::new(&eps, &output, omega)?;
//! assert!(monitor.outgoing_power(&ez) > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod adjoint;
pub mod factor_cache;
pub mod farfield;
pub mod modes;
pub mod monitor;
pub mod operator;
pub mod pml;
pub mod simulation;
pub mod source;
pub mod sparams;
pub mod spectrum;

pub use adjoint::{gradient_from_fields, solve_with_adjoint, AdjointSolution, PowerObjective};
pub use factor_cache::{
    factor, factor_coalesced, CacheStats, FactorCache, FactorOutcome, Fingerprint,
};
pub use farfield::FarFieldProjector;
pub use modes::{solve_slab_modes, ModeError, SlabMode};
pub use monitor::{derive_h_fields, FluxMonitor, LinearFunctional, ModeMonitor};
pub use operator::HelmholtzOperator;
pub use pml::PmlConfig;
pub use simulation::{Backend, FdfdSolver};
pub use source::{point_source, ModeSource};
pub use sparams::{SMatrix, SMatrixError};
pub use spectrum::{linspace_wavelengths, transmission_spectrum, SpectrumPoint};
