//! Wideband spectrum sweeps: one design, many wavelengths, one batch.
//!
//! The WDM/filter workloads the paper targets are judged on their
//! *spectra* — transmission at K = 32–128 wavelengths per candidate
//! design, re-evaluated after every design update. Solving those K
//! frequencies one at a time pays K independent passes through the solve
//! plane; this module assembles the whole sweep into a single
//! [`FieldSolver::solve_ez_batch`] call so the frequencies ride the
//! batched (ω-bucket × RHS-block) work items, the factor cache, and the
//! blocked substitution kernels in one go. Repeat sweeps of an unchanged
//! design hit the cache for every frequency and skip factorization
//! entirely.
//!
//! Each wavelength gets its own eigenmode excitation (the port mode is
//! frequency dependent), so the sweep is physical rather than a fixed
//! current density replayed at shifted ω. For a fixed-source sweep use
//! [`FieldSolver::solve_ez_spectrum`] directly.

use crate::monitor::ModeMonitor;
use crate::simulation::FdfdSolver;
use crate::source::ModeSource;
use crate::sparams::SMatrixError;
use maps_core::{omega_for_wavelength, Axis, Direction, FieldSolver, Port, RealField2d};
use maps_core::{ComplexField2d, SolveRequest};

/// Transmission at one frequency of a sweep.
#[derive(Debug, Clone)]
pub struct SpectrumPoint {
    /// Free-space wavelength in µm.
    pub wavelength_um: f64,
    /// Angular frequency (rad/s in normalized units).
    pub omega: f64,
    /// Power fraction coupled into each output port's outgoing mode,
    /// in the order the ports were supplied.
    pub transmission: Vec<f64>,
}

/// Evenly spaced wavelengths spanning `[lo_um, hi_um]`, inclusive.
///
/// The conventional way to pick a sweep's sample points; `k = 1` returns
/// just `lo_um`.
pub fn linspace_wavelengths(lo_um: f64, hi_um: f64, k: usize) -> Vec<f64> {
    match k {
        0 => Vec::new(),
        1 => vec![lo_um],
        _ => (0..k)
            .map(|i| lo_um + (hi_um - lo_um) * i as f64 / (k - 1) as f64)
            .collect(),
    }
}

/// Sweeps the transmission spectrum of a structure: excites `input` with
/// its port eigenmode at every wavelength and records the power fraction
/// reaching each of the `outputs`, normalized by the launched power.
///
/// All K frequencies are issued as one forward batch, so distinct-ω
/// factorizations coalesce through the factor cache and repeat sweeps of
/// the same permittivity map skip factorization entirely. Ports follow
/// the device convention: directions point *out* of the structure (the
/// excitation is launched inward automatically).
///
/// # Errors
///
/// Returns [`SMatrixError`] when a port guides no eigenmode at some
/// wavelength or a field solve fails. One bad frequency fails the whole
/// sweep — a spectrum with holes is not a spectrum.
pub fn transmission_spectrum(
    solver: &FdfdSolver,
    eps_r: &RealField2d,
    input: &Port,
    outputs: &[Port],
    wavelengths_um: &[f64],
) -> Result<Vec<SpectrumPoint>, SMatrixError> {
    let grid = eps_r.grid();
    let inward = Port {
        direction: match input.direction {
            Direction::Positive => Direction::Negative,
            Direction::Negative => Direction::Positive,
        },
        ..*input
    };
    // The launched-power monitor sits a few cells inside the device, away
    // from the source plane where the near field is non-modal (same
    // placement the S-matrix extractor uses).
    let offset = 4.0 * grid.dl;
    let shifted_center = match (input.axis, input.direction) {
        (Axis::X, Direction::Negative) => (input.center.0 + offset, input.center.1),
        (Axis::X, Direction::Positive) => (input.center.0 - offset, input.center.1),
        (Axis::Y, Direction::Negative) => (input.center.0, input.center.1 + offset),
        (Axis::Y, Direction::Positive) => (input.center.0, input.center.1 - offset),
    };
    let self_port = Port {
        center: shifted_center,
        ..*input
    };

    // Per-wavelength excitations and monitors (the port mode disperses),
    // then the whole sweep as one forward batch.
    let mut omegas = Vec::with_capacity(wavelengths_um.len());
    let mut sources: Vec<ComplexField2d> = Vec::with_capacity(wavelengths_um.len());
    let mut launch_monitors = Vec::with_capacity(wavelengths_um.len());
    let mut out_monitors = Vec::with_capacity(wavelengths_um.len());
    for &lambda in wavelengths_um {
        let omega = omega_for_wavelength(lambda);
        sources.push(ModeSource::new(eps_r, &inward, omega)?.current_density(grid));
        launch_monitors.push(ModeMonitor::new(eps_r, &self_port, omega)?);
        out_monitors.push(
            outputs
                .iter()
                .map(|p| ModeMonitor::new(eps_r, p, omega))
                .collect::<Result<Vec<_>, _>>()?,
        );
        omegas.push(omega);
    }
    let requests: Vec<SolveRequest<'_>> = sources
        .iter()
        .zip(&omegas)
        .map(|(j, &omega)| SolveRequest::forward(j, omega))
        .collect();
    let fields = solver.solve_ez_batch(eps_r, &requests);

    let mut points = Vec::with_capacity(wavelengths_um.len());
    for (i, field) in fields.into_iter().enumerate() {
        let ez = field?;
        let launched = launch_monitors[i].incoming_functional().eval(&ez);
        let norm = launched.norm_sqr().max(1e-300);
        let transmission = out_monitors[i]
            .iter()
            .map(|m| m.outgoing_functional().eval(&ez).norm_sqr() / norm)
            .collect();
        points.push(SpectrumPoint {
            wavelength_um: wavelengths_um[i],
            omega: omegas[i],
            transmission,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pml::PmlConfig;
    use maps_core::{Grid2d, Rect, Shape};

    fn straight_guide() -> (RealField2d, Port, Port) {
        let grid = Grid2d::new(70, 44, 0.05);
        let yc = grid.height() / 2.0;
        let mut eps = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut eps,
            &Shape::Rect(Rect::new(0.0, yc - 0.24, grid.width(), yc + 0.24)),
            12.11,
        );
        let input = Port::new((1.2, yc), 0.48, Axis::X, Direction::Negative);
        let output = Port::new((grid.width() - 1.2, yc), 0.48, Axis::X, Direction::Positive);
        (eps, input, output)
    }

    #[test]
    fn linspace_endpoints_and_degenerate_counts() {
        assert!(linspace_wavelengths(1.5, 1.6, 0).is_empty());
        assert_eq!(linspace_wavelengths(1.5, 1.6, 1), vec![1.5]);
        let w = linspace_wavelengths(1.5, 1.6, 5);
        assert_eq!(w.len(), 5);
        assert!((w[0] - 1.5).abs() < 1e-12);
        assert!((w[4] - 1.6).abs() < 1e-12);
        assert!((w[2] - 1.55).abs() < 1e-12);
    }

    /// A straight waveguide passes all wavelengths: transmission near
    /// unity across the sweep, and points come back in input order.
    #[test]
    fn straight_waveguide_is_broadband() {
        let (eps, input, output) = straight_guide();
        let solver = FdfdSolver::with_pml(PmlConfig::auto(eps.grid().dl));
        let wavelengths = linspace_wavelengths(1.5, 1.6, 5);
        let points = transmission_spectrum(&solver, &eps, &input, &[output], &wavelengths).unwrap();
        assert_eq!(points.len(), wavelengths.len());
        for (pt, &lambda) in points.iter().zip(&wavelengths) {
            assert_eq!(pt.wavelength_um, lambda);
            assert_eq!(pt.transmission.len(), 1);
            assert!(
                pt.transmission[0] > 0.7,
                "T({lambda}) = {}",
                pt.transmission[0]
            );
        }
    }

    /// The batched sweep matches solving each wavelength on its own —
    /// the batch plane is bit-identical to scalar solves, so transmission
    /// numbers must agree exactly.
    #[test]
    fn batched_sweep_matches_per_wavelength_sweeps() {
        let (eps, input, output) = straight_guide();
        let solver = FdfdSolver::with_pml(PmlConfig::auto(eps.grid().dl));
        let wavelengths = linspace_wavelengths(1.52, 1.58, 3);
        let batched =
            transmission_spectrum(&solver, &eps, &input, &[output], &wavelengths).unwrap();
        for (pt, &lambda) in batched.iter().zip(&wavelengths) {
            let alone = transmission_spectrum(&solver, &eps, &input, &[output], &[lambda]).unwrap();
            assert_eq!(
                pt.transmission[0].to_bits(),
                alone[0].transmission[0].to_bits()
            );
        }
    }
}
