//! The FDFD solver facade.

use crate::monitor::derive_h_fields;
use crate::operator::HelmholtzOperator;
use crate::pml::PmlConfig;
use maps_core::{
    ComplexField2d, EmFields, FieldSolver, RealField2d, SolveFieldError, SolveKind, SolveRequest,
};
use maps_linalg::{bicgstab, Complex64, IterativeOptions};
use rayon::prelude::*;

/// Which linear-algebra backend performs the solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Exact banded LU (default): `O(n·nx²)` but robust, and the
    /// factorization can be reused for the adjoint solve.
    Direct,
    /// Jacobi-preconditioned BiCGSTAB on the CSR operator.
    Iterative(IterativeOptions),
}

/// A 2-D `Ez`-polarization FDFD Maxwell solver.
///
/// ```
/// use maps_core::{ComplexField2d, FieldSolver, Grid2d, RealField2d};
/// use maps_fdfd::FdfdSolver;
///
/// # fn main() -> Result<(), maps_core::SolveFieldError> {
/// let grid = Grid2d::new(64, 48, 0.05);
/// let eps = RealField2d::constant(grid, 1.0);
/// let mut j = ComplexField2d::zeros(grid);
/// j.set(32, 24, maps_linalg::Complex64::ONE);
/// let solver = FdfdSolver::new();
/// let ez = solver.solve_ez(&eps, &j, maps_core::omega_for_wavelength(1.55))?;
/// assert!(ez.norm() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FdfdSolver {
    pml: PmlConfig,
    backend: Backend,
    rhs_block: Option<usize>,
}

impl Default for FdfdSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl FdfdSolver {
    /// Creates a solver with the default PML and the direct backend.
    pub fn new() -> Self {
        FdfdSolver {
            pml: PmlConfig::default(),
            backend: Backend::Direct,
            rhs_block: None,
        }
    }

    /// Creates a solver with a custom PML configuration.
    pub fn with_pml(pml: PmlConfig) -> Self {
        FdfdSolver {
            pml,
            backend: Backend::Direct,
            rhs_block: None,
        }
    }

    /// Selects the solve backend, returning the modified solver.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the RHS block width used by the batched solve plane,
    /// returning the modified solver. Zero is clamped to one.
    pub fn rhs_block(mut self, block: usize) -> Self {
        self.rhs_block = Some(block);
        self
    }

    /// The RHS block width the batched plane will use: the builder override
    /// if set, else the `MAPS_RHS_BLOCK` environment knob, else
    /// [`maps_linalg::DEFAULT_RHS_BLOCK`].
    pub fn effective_rhs_block(&self) -> usize {
        self.rhs_block
            .unwrap_or_else(|| {
                maps_obs::parse_env_or("MAPS_RHS_BLOCK", maps_linalg::DEFAULT_RHS_BLOCK)
            })
            .max(1)
    }

    /// The PML configuration in use.
    pub fn pml(&self) -> &PmlConfig {
        &self.pml
    }

    /// Assembles the Helmholtz operator for a given permittivity and
    /// frequency (exposed for adjoint work and rich labels).
    pub fn operator(&self, eps_r: &RealField2d, omega: f64) -> HelmholtzOperator {
        HelmholtzOperator::new(eps_r, omega, &self.pml)
    }

    /// Builds the right-hand side `b = −iω·Jz` from a current density.
    pub fn rhs(source: &ComplexField2d, omega: f64) -> Vec<Complex64> {
        source
            .as_slice()
            .iter()
            .map(|j| Complex64::new(0.0, -omega) * *j)
            .collect()
    }

    /// Solves for all TM field components (`Ez`, and derived `Hx`, `Hy`).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveFieldError`] from [`FieldSolver::solve_ez`].
    pub fn solve_fields(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<EmFields, SolveFieldError> {
        let ez = self.solve_ez(eps_r, source, omega)?;
        let (hx, hy) = derive_h_fields(&ez, omega);
        Ok(EmFields { ez, hx, hy })
    }

    /// Relative residual `‖A·e − b‖/‖b‖` of a candidate field — the
    /// physics self-check exported as the `maxwell_residual` rich label.
    pub fn residual(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        ez: &ComplexField2d,
    ) -> f64 {
        let op = self.operator(eps_r, omega);
        let b = Self::rhs(source, omega);
        let ae = op.apply(ez.as_slice());
        let mut num = 0.0;
        let mut den = 0.0;
        for (r, bb) in ae.iter().zip(&b) {
            num += (*r - *bb).norm_sqr();
            den += bb.norm_sqr();
        }
        if den == 0.0 {
            num.sqrt()
        } else {
            (num / den).sqrt()
        }
    }
}

/// Formats an iterative-backend failure with its full convergence record so
/// callers of [`FieldSolver::solve_ez`] see how close the solve got.
fn convergence_detail(e: &maps_linalg::LinalgError, opts: IterativeOptions) -> String {
    match e {
        maps_linalg::LinalgError::NoConvergence {
            iterations,
            residual,
        } => format!(
            "bicgstab stalled after {iterations} iterations: relative residual \
             {residual:.3e} did not reach tolerance {:.3e} (max_iterations {})",
            opts.tolerance, opts.max_iterations
        ),
        other => other.to_string(),
    }
}

impl FieldSolver for FdfdSolver {
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        self.solve_ez_relaxed(eps_r, source, omega, 1.0)
    }

    fn solve_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        if eps_r.grid() != source.grid() {
            return Err(SolveFieldError::GridMismatch {
                detail: format!(
                    "eps grid {:?} vs source grid {:?}",
                    eps_r.grid(),
                    source.grid()
                ),
            });
        }
        if !(omega.is_finite() && omega > 0.0) {
            return Err(SolveFieldError::InvalidInput {
                detail: "omega must be positive and finite".into(),
            });
        }
        let _span = maps_obs::span("fdfd.solve_ez")
            .field("backend", self.name())
            .field("cells", eps_r.grid().len());
        maps_obs::counter("fdfd.forward_solves").inc();
        let b = Self::rhs(source, omega);
        let x = match self.backend {
            Backend::Direct => {
                // One factorization per distinct (eps, omega, PML): the
                // process-wide cache shares the LU across forward, adjoint,
                // and repeated monitor/S-param solves of the same design.
                let lu = crate::factor_cache::factor(eps_r, omega, &self.pml, || {
                    self.operator(eps_r, omega).to_banded()
                })
                .map_err(|e| SolveFieldError::Numerical {
                    detail: e.to_string(),
                })?;
                let _s = maps_obs::span("fdfd.backsub");
                lu.solve(&b)
            }
            Backend::Iterative(opts) => {
                let op = self.operator(eps_r, omega);
                let _s = maps_obs::span("fdfd.bicgstab");
                // Relax-then-retighten: the factor applies to this call
                // only; the solver's stored options stay tight.
                let opts = if tol_factor > 1.0 {
                    opts.relaxed(tol_factor)
                } else {
                    opts
                };
                let (x, stats) =
                    bicgstab(&op.to_csr(), &b, opts).map_err(|e| SolveFieldError::Numerical {
                        detail: convergence_detail(&e, opts),
                    })?;
                maps_obs::histogram("fdfd.bicgstab.iterations").record(stats.iterations as f64);
                maps_obs::histogram("fdfd.bicgstab.residual").record(stats.residual);
                x
            }
        };
        let field = ComplexField2d::from_vec(eps_r.grid(), x);
        maps_core::ensure_finite(&field, self.name())?;
        Ok(field)
    }

    fn solve_adjoint_ez(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        // Exact transpose solve (no reciprocity approximation).
        if eps_r.grid() != rhs.grid() {
            return Err(SolveFieldError::GridMismatch {
                detail: "eps and adjoint-rhs grids differ".into(),
            });
        }
        let _span = maps_obs::span("fdfd.solve_adjoint_ez")
            .field("backend", self.name())
            .field("cells", eps_r.grid().len());
        maps_obs::counter("fdfd.adjoint_solves").inc();
        // Reuses the factor of the immediately preceding forward solve of
        // the same design (the cache retains at least the most recent
        // factorization even when disabled), so a forward/adjoint pair
        // costs one factorization plus two substitution sweeps.
        let lu = crate::factor_cache::factor(eps_r, omega, &self.pml, || {
            self.operator(eps_r, omega).to_banded()
        })
        .map_err(|e| SolveFieldError::Numerical {
            detail: e.to_string(),
        })?;
        let _s = maps_obs::span("fdfd.backsub");
        let field = ComplexField2d::from_vec(eps_r.grid(), lu.solve_transposed(rhs.as_slice()));
        maps_core::ensure_finite(&field, self.name())?;
        Ok(field)
    }

    /// Batched solves, grouped to amortize factorizations *and* band sweeps.
    ///
    /// The whole batch shares one permittivity map, so the (ε-fingerprint,
    /// ω) grouping key reduces to ω: requests are bucketed by exact `omega`
    /// bits, and each bucket's forward and adjoint right-hand sides are
    /// split into RHS blocks of [`FdfdSolver::effective_rhs_block`] width.
    /// Every (ω-bucket × kind × RHS-block) work item fetches its banded LU
    /// from the factor cache (single-flight coalescing makes concurrent
    /// items of the same bucket share one factorization) and sweeps its
    /// whole block through one pass over the factors via
    /// [`maps_linalg::BandedLu::solve_many_into_blocked`] /
    /// `solve_transposed_many_into_blocked`. A K-excitation batch over G
    /// distinct frequencies therefore pays G factorizations (fewer on cache
    /// hits) and ~K/block traversals of the band data instead of K.
    ///
    /// Work items are independent (distinct result slots), so they run in
    /// parallel across the vendored-rayon workers — RHS-block parallelism
    /// *within* a bucket composing with the across-ω parallelism — and the
    /// answers are scattered back into input order. The blocked sweeps
    /// replay the exact scalar op sequence per right-hand side, so batched
    /// fields are bit-identical to one-by-one `solve_ez` /
    /// `solve_adjoint_ez` calls. Validation is per request: a bad grid or
    /// frequency fails only its own slot.
    fn solve_ez_batch(
        &self,
        eps_r: &RealField2d,
        requests: &[SolveRequest<'_>],
    ) -> Vec<Result<ComplexField2d, SolveFieldError>> {
        // The iterative backend has no factorization to amortize; each
        // request runs its own Krylov solve via the scalar entry points.
        if matches!(self.backend, Backend::Iterative(_)) {
            return requests
                .iter()
                .map(|req| match req.kind {
                    SolveKind::Forward => self.solve_ez(eps_r, req.source, req.omega),
                    SolveKind::Adjoint => self.solve_adjoint_ez(eps_r, req.source, req.omega),
                })
                .collect();
        }
        let grid = eps_r.grid();
        let n = grid.len();
        let mut results: Vec<Option<Result<ComplexField2d, SolveFieldError>>> =
            requests.iter().map(|_| None).collect();
        // Bucket valid requests by exact omega bits, first-seen order.
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            if grid != req.source.grid() {
                results[i] = Some(Err(SolveFieldError::GridMismatch {
                    detail: format!(
                        "eps grid {:?} vs request {i} grid {:?}",
                        grid,
                        req.source.grid()
                    ),
                }));
                continue;
            }
            if !(req.omega.is_finite() && req.omega > 0.0) {
                results[i] = Some(Err(SolveFieldError::InvalidInput {
                    detail: format!("request {i}: omega must be positive and finite"),
                }));
                continue;
            }
            let key = req.omega.to_bits();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        let block = self.effective_rhs_block();
        let group_sizes = groups
            .iter()
            .map(|(k, members)| format!("{:.4}x{}", f64::from_bits(*k), members.len()))
            .collect::<Vec<_>>()
            .join(",");
        for (_, members) in &groups {
            maps_obs::histogram("fdfd.solve_batch.group_size").record(members.len() as f64);
        }
        let _span = maps_obs::span("fdfd.solve_batch")
            .field("backend", self.name())
            .field("cells", n)
            .field("requests", requests.len())
            .field("groups", groups.len())
            .field("group_sizes", group_sizes)
            .field("rhs_block", block);
        maps_obs::counter("fdfd.solve_batch.calls").inc();
        maps_obs::counter("fdfd.solve_batch.requests").add(requests.len() as u64);
        // Split every ω-bucket into (kind × RHS-block) work items. Items are
        // independent (distinct operators or distinct result slots), so they
        // run in parallel across the vendored-rayon workers — same-bucket
        // items share one factorization through the cache's single-flight
        // coalescing; worker spans adopt this batch's flow, so the exported
        // trace shows one stitched fan-out. Per-item answers come back as
        // (request index, result) pairs and are scattered into input order
        // below — the same determinism contract as the sequential loop.
        let mut items: Vec<(f64, SolveKind, Vec<usize>)> = Vec::new();
        for (_, members) in &groups {
            let omega = requests[members[0]].omega;
            for kind in [SolveKind::Forward, SolveKind::Adjoint] {
                let of_kind: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&i| requests[i].kind == kind)
                    .collect();
                for chunk in of_kind.chunks(block) {
                    items.push((omega, kind, chunk.to_vec()));
                }
            }
        }
        type Answer = (usize, Result<ComplexField2d, SolveFieldError>);
        let item_answers: Vec<Vec<Answer>> = items
            .par_iter()
            .map(|(omega, kind, members)| {
                let omega = *omega;
                let kind_name = match kind {
                    SolveKind::Forward => "forward",
                    SolveKind::Adjoint => "adjoint",
                };
                let _span = maps_obs::span("fdfd.solve_group")
                    .field("omega", format!("{omega:.4}"))
                    .field("kind", kind_name)
                    .field("requests", members.len())
                    .field("rhs_block", block);
                let mut answers: Vec<Answer> = Vec::with_capacity(members.len());
                let lu = match crate::factor_cache::factor(eps_r, omega, &self.pml, || {
                    self.operator(eps_r, omega).to_banded()
                }) {
                    Ok(lu) => lu,
                    Err(e) => {
                        for &i in members {
                            answers.push((
                                i,
                                Err(SolveFieldError::Numerical {
                                    detail: e.to_string(),
                                }),
                            ));
                        }
                        return answers;
                    }
                };
                let counter_name = match kind {
                    SolveKind::Forward => "fdfd.forward_solves",
                    SolveKind::Adjoint => "fdfd.adjoint_solves",
                };
                maps_obs::counter(counter_name).add(members.len() as u64);
                // One pass over the L/U factors answers the whole block:
                // the interleaved sweep reads the ~n·ldab band data once
                // per block instead of once per right-hand side.
                let _s = maps_obs::span("fdfd.backsub")
                    .field("kind", kind_name)
                    .field("rhs", members.len());
                let rhs: Vec<Vec<Complex64>> = members
                    .iter()
                    .map(|&i| match kind {
                        SolveKind::Forward => Self::rhs(requests[i].source, omega),
                        SolveKind::Adjoint => requests[i].source.as_slice().to_vec(),
                    })
                    .collect();
                // The owned-rows variant scatters each solution straight
                // into the vector its field will own — no flat staging
                // buffer to zero and re-copy.
                let solutions = match kind {
                    SolveKind::Forward => lu.solve_many_blocked(&rhs, block),
                    SolveKind::Adjoint => lu.solve_transposed_many_blocked(&rhs, block),
                };
                for (x, &i) in solutions.into_iter().zip(members.iter()) {
                    let field = ComplexField2d::from_vec(grid, x);
                    answers.push((
                        i,
                        maps_core::ensure_finite(&field, self.name()).map(|()| field),
                    ));
                }
                answers
            })
            .collect();
        for (i, answer) in item_answers.into_iter().flatten() {
            results[i] = Some(answer);
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch request must be answered"))
            .collect()
    }

    fn name(&self) -> &str {
        match self.backend {
            Backend::Direct => "fdfd-direct",
            Backend::Iterative(_) => "fdfd-bicgstab",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;

    #[test]
    fn grid_mismatch_is_reported() {
        let solver = FdfdSolver::new();
        let eps = RealField2d::constant(Grid2d::new(40, 40, 0.05), 1.0);
        let j = ComplexField2d::zeros(Grid2d::new(30, 40, 0.05));
        let err = solver.solve_ez(&eps, &j, 4.0).unwrap_err();
        assert!(matches!(err, SolveFieldError::GridMismatch { .. }));
    }

    #[test]
    fn invalid_omega_is_reported() {
        let solver = FdfdSolver::new();
        let grid = Grid2d::new(40, 40, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let j = ComplexField2d::zeros(grid);
        let err = solver.solve_ez(&eps, &j, -1.0).unwrap_err();
        assert!(matches!(err, SolveFieldError::InvalidInput { .. }));
    }

    #[test]
    fn solution_satisfies_maxwell_system() {
        let grid = Grid2d::new(48, 40, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(24, 20, Complex64::ONE);
        let solver = FdfdSolver::new();
        let ez = solver.solve_ez(&eps, &j, omega).unwrap();
        let r = solver.residual(&eps, &j, omega, &ez);
        assert!(r < 1e-10, "residual {r}");
    }

    #[test]
    fn direct_and_iterative_backends_agree() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 16, Complex64::ONE);
        let direct = FdfdSolver::new();
        let iterative = FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
            tolerance: 1e-10,
            max_iterations: 200_000,
        }));
        let e1 = direct.solve_ez(&eps, &j, omega).unwrap();
        let e2 = iterative.solve_ez(&eps, &j, omega).unwrap();
        assert!(e1.normalized_l2_distance(&e2) < 1e-6);
    }

    #[test]
    fn nan_input_is_caught_by_output_validation() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 16, Complex64::new(f64::NAN, 0.0));
        let err = FdfdSolver::new()
            .solve_ez(&eps, &j, maps_core::omega_for_wavelength(1.55))
            .unwrap_err();
        assert!(
            matches!(err, SolveFieldError::NonFinite { .. }),
            "NaN must not escape silently: {err:?}"
        );
    }

    #[test]
    fn relaxed_entry_point_rescues_tight_iterative_solve() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 16, Complex64::ONE);
        // A tolerance this problem cannot reach within the iteration
        // budget fails tight...
        let solver = FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
            tolerance: 1e-9,
            max_iterations: 400,
        }));
        let tight = solver.solve_ez(&eps, &j, omega);
        assert!(tight.is_err(), "1e-9 should not converge in 400 iterations");
        // ...but succeeds once relaxed by 1e3 (→ 1e-6), and the rescued
        // field genuinely solves Maxwell at the relaxed tolerance.
        let ez = solver.solve_ez_relaxed(&eps, &j, omega, 1e3).unwrap();
        let r = solver.residual(&eps, &j, omega, &ez);
        assert!(r < 1e-4, "residual {r}");
    }

    #[test]
    fn batch_validation_fails_only_the_bad_slot() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 16, Complex64::ONE);
        let wrong = ComplexField2d::zeros(Grid2d::new(10, 10, 0.05));
        let solver = FdfdSolver::new();
        let requests = [
            SolveRequest::forward(&j, omega),
            SolveRequest::forward(&wrong, omega),
            SolveRequest::forward(&j, -3.0),
            SolveRequest::adjoint(&j, omega),
        ];
        let out = solver.solve_ez_batch(&eps, &requests);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(SolveFieldError::GridMismatch { .. })));
        assert!(matches!(out[2], Err(SolveFieldError::InvalidInput { .. })));
        assert!(out[3].is_ok());
    }

    #[test]
    fn batch_is_bit_identical_to_scalar_solves() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 2.25);
        let w1 = maps_core::omega_for_wavelength(1.50);
        let w2 = maps_core::omega_for_wavelength(1.60);
        let mut j1 = ComplexField2d::zeros(grid);
        j1.set(12, 16, Complex64::ONE);
        let mut j2 = ComplexField2d::zeros(grid);
        j2.set(24, 16, Complex64::new(0.0, 1.0));
        let solver = FdfdSolver::new();
        let requests = [
            SolveRequest::forward(&j1, w1),
            SolveRequest::forward(&j2, w2),
            SolveRequest::adjoint(&j2, w1),
            SolveRequest::forward(&j2, w1),
        ];
        let batch = solver.solve_ez_batch(&eps, &requests);
        let scalar = [
            solver.solve_ez(&eps, &j1, w1).unwrap(),
            solver.solve_ez(&eps, &j2, w2).unwrap(),
            solver.solve_adjoint_ez(&eps, &j2, w1).unwrap(),
            solver.solve_ez(&eps, &j2, w1).unwrap(),
        ];
        for (b, s) in batch.iter().zip(&scalar) {
            let b = b.as_ref().unwrap();
            for (a, e) in b.as_slice().iter().zip(s.as_slice()) {
                assert_eq!(a.re.to_bits(), e.re.to_bits());
                assert_eq!(a.im.to_bits(), e.im.to_bits());
            }
        }
    }

    #[test]
    fn point_source_wavelength_matches_medium() {
        // In a uniform medium of index n, the radiated wavelength is λ/n.
        // Verify via the phase progression of Ez along a radius.
        let grid = Grid2d::new(96, 96, 0.05);
        let n_medium: f64 = 2.0;
        let eps = RealField2d::constant(grid, n_medium * n_medium);
        let lambda0 = 1.55;
        let omega = maps_core::omega_for_wavelength(lambda0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(48, 48, Complex64::ONE);
        let ez = FdfdSolver::new().solve_ez(&eps, &j, omega).unwrap();
        // Count phase advance over a stretch away from source and PML.
        let mut total_dphi = 0.0;
        for ix in 58..80 {
            let p0 = ez.get(ix, 48).arg();
            let p1 = ez.get(ix + 1, 48).arg();
            let mut d = p1 - p0;
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            total_dphi += d.abs();
        }
        let k_measured = total_dphi / (22.0 * grid.dl);
        let k_expected = omega * n_medium;
        assert!(
            (k_measured - k_expected).abs() / k_expected < 0.05,
            "k measured {k_measured} vs expected {k_expected}"
        );
    }
}
