//! The FDFD solver facade.

use crate::monitor::derive_h_fields;
use crate::operator::HelmholtzOperator;
use crate::pml::PmlConfig;
use maps_core::{ComplexField2d, EmFields, FieldSolver, RealField2d, SolveFieldError};
use maps_linalg::{bicgstab, Complex64, IterativeOptions};

/// Which linear-algebra backend performs the solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Exact banded LU (default): `O(n·nx²)` but robust, and the
    /// factorization can be reused for the adjoint solve.
    Direct,
    /// Jacobi-preconditioned BiCGSTAB on the CSR operator.
    Iterative(IterativeOptions),
}

/// A 2-D `Ez`-polarization FDFD Maxwell solver.
///
/// ```
/// use maps_core::{ComplexField2d, FieldSolver, Grid2d, RealField2d};
/// use maps_fdfd::FdfdSolver;
///
/// # fn main() -> Result<(), maps_core::SolveFieldError> {
/// let grid = Grid2d::new(64, 48, 0.05);
/// let eps = RealField2d::constant(grid, 1.0);
/// let mut j = ComplexField2d::zeros(grid);
/// j.set(32, 24, maps_linalg::Complex64::ONE);
/// let solver = FdfdSolver::new();
/// let ez = solver.solve_ez(&eps, &j, maps_core::omega_for_wavelength(1.55))?;
/// assert!(ez.norm() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FdfdSolver {
    pml: PmlConfig,
    backend: Backend,
}

impl Default for FdfdSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl FdfdSolver {
    /// Creates a solver with the default PML and the direct backend.
    pub fn new() -> Self {
        FdfdSolver {
            pml: PmlConfig::default(),
            backend: Backend::Direct,
        }
    }

    /// Creates a solver with a custom PML configuration.
    pub fn with_pml(pml: PmlConfig) -> Self {
        FdfdSolver {
            pml,
            backend: Backend::Direct,
        }
    }

    /// Selects the solve backend, returning the modified solver.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The PML configuration in use.
    pub fn pml(&self) -> &PmlConfig {
        &self.pml
    }

    /// Assembles the Helmholtz operator for a given permittivity and
    /// frequency (exposed for adjoint work and rich labels).
    pub fn operator(&self, eps_r: &RealField2d, omega: f64) -> HelmholtzOperator {
        HelmholtzOperator::new(eps_r, omega, &self.pml)
    }

    /// Builds the right-hand side `b = −iω·Jz` from a current density.
    pub fn rhs(source: &ComplexField2d, omega: f64) -> Vec<Complex64> {
        source
            .as_slice()
            .iter()
            .map(|j| Complex64::new(0.0, -omega) * *j)
            .collect()
    }

    /// Solves for all TM field components (`Ez`, and derived `Hx`, `Hy`).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveFieldError`] from [`FieldSolver::solve_ez`].
    pub fn solve_fields(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<EmFields, SolveFieldError> {
        let ez = self.solve_ez(eps_r, source, omega)?;
        let (hx, hy) = derive_h_fields(&ez, omega);
        Ok(EmFields { ez, hx, hy })
    }

    /// Relative residual `‖A·e − b‖/‖b‖` of a candidate field — the
    /// physics self-check exported as the `maxwell_residual` rich label.
    pub fn residual(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        ez: &ComplexField2d,
    ) -> f64 {
        let op = self.operator(eps_r, omega);
        let b = Self::rhs(source, omega);
        let ae = op.apply(ez.as_slice());
        let mut num = 0.0;
        let mut den = 0.0;
        for (r, bb) in ae.iter().zip(&b) {
            num += (*r - *bb).norm_sqr();
            den += bb.norm_sqr();
        }
        if den == 0.0 {
            num.sqrt()
        } else {
            (num / den).sqrt()
        }
    }
}

/// Formats an iterative-backend failure with its full convergence record so
/// callers of [`FieldSolver::solve_ez`] see how close the solve got.
fn convergence_detail(e: &maps_linalg::LinalgError, opts: IterativeOptions) -> String {
    match e {
        maps_linalg::LinalgError::NoConvergence {
            iterations,
            residual,
        } => format!(
            "bicgstab stalled after {iterations} iterations: relative residual \
             {residual:.3e} did not reach tolerance {:.3e} (max_iterations {})",
            opts.tolerance, opts.max_iterations
        ),
        other => other.to_string(),
    }
}

impl FieldSolver for FdfdSolver {
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        self.solve_ez_relaxed(eps_r, source, omega, 1.0)
    }

    fn solve_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        if eps_r.grid() != source.grid() {
            return Err(SolveFieldError::GridMismatch {
                detail: format!(
                    "eps grid {:?} vs source grid {:?}",
                    eps_r.grid(),
                    source.grid()
                ),
            });
        }
        if !(omega.is_finite() && omega > 0.0) {
            return Err(SolveFieldError::InvalidInput {
                detail: "omega must be positive and finite".into(),
            });
        }
        let _span = maps_obs::span("fdfd.solve_ez")
            .field("backend", self.name())
            .field("cells", eps_r.grid().len());
        maps_obs::counter("fdfd.forward_solves").inc();
        let b = Self::rhs(source, omega);
        let x = match self.backend {
            Backend::Direct => {
                // One factorization per distinct (eps, omega, PML): the
                // process-wide cache shares the LU across forward, adjoint,
                // and repeated monitor/S-param solves of the same design.
                let lu = crate::factor_cache::factor(eps_r, omega, &self.pml, || {
                    self.operator(eps_r, omega).to_banded()
                })
                .map_err(|e| SolveFieldError::Numerical {
                    detail: e.to_string(),
                })?;
                let _s = maps_obs::span("fdfd.backsub");
                lu.solve(&b)
            }
            Backend::Iterative(opts) => {
                let op = self.operator(eps_r, omega);
                let _s = maps_obs::span("fdfd.bicgstab");
                // Relax-then-retighten: the factor applies to this call
                // only; the solver's stored options stay tight.
                let opts = if tol_factor > 1.0 {
                    opts.relaxed(tol_factor)
                } else {
                    opts
                };
                let (x, stats) = bicgstab(&op.to_csr(), &b, opts).map_err(|e| {
                    SolveFieldError::Numerical {
                        detail: convergence_detail(&e, opts),
                    }
                })?;
                maps_obs::histogram("fdfd.bicgstab.iterations").record(stats.iterations as f64);
                maps_obs::histogram("fdfd.bicgstab.residual").record(stats.residual);
                x
            }
        };
        let field = ComplexField2d::from_vec(eps_r.grid(), x);
        maps_core::ensure_finite(&field, self.name())?;
        Ok(field)
    }

    fn solve_adjoint_ez(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        // Exact transpose solve (no reciprocity approximation).
        if eps_r.grid() != rhs.grid() {
            return Err(SolveFieldError::GridMismatch {
                detail: "eps and adjoint-rhs grids differ".into(),
            });
        }
        let _span = maps_obs::span("fdfd.solve_adjoint_ez")
            .field("backend", self.name())
            .field("cells", eps_r.grid().len());
        maps_obs::counter("fdfd.adjoint_solves").inc();
        // Reuses the factor of the immediately preceding forward solve of
        // the same design (the cache retains at least the most recent
        // factorization even when disabled), so a forward/adjoint pair
        // costs one factorization plus two substitution sweeps.
        let lu = crate::factor_cache::factor(eps_r, omega, &self.pml, || {
            self.operator(eps_r, omega).to_banded()
        })
        .map_err(|e| SolveFieldError::Numerical {
            detail: e.to_string(),
        })?;
        let _s = maps_obs::span("fdfd.backsub");
        let field = ComplexField2d::from_vec(eps_r.grid(), lu.solve_transposed(rhs.as_slice()));
        maps_core::ensure_finite(&field, self.name())?;
        Ok(field)
    }

    fn name(&self) -> &str {
        match self.backend {
            Backend::Direct => "fdfd-direct",
            Backend::Iterative(_) => "fdfd-bicgstab",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;

    #[test]
    fn grid_mismatch_is_reported() {
        let solver = FdfdSolver::new();
        let eps = RealField2d::constant(Grid2d::new(40, 40, 0.05), 1.0);
        let j = ComplexField2d::zeros(Grid2d::new(30, 40, 0.05));
        let err = solver.solve_ez(&eps, &j, 4.0).unwrap_err();
        assert!(matches!(err, SolveFieldError::GridMismatch { .. }));
    }

    #[test]
    fn invalid_omega_is_reported() {
        let solver = FdfdSolver::new();
        let grid = Grid2d::new(40, 40, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let j = ComplexField2d::zeros(grid);
        let err = solver.solve_ez(&eps, &j, -1.0).unwrap_err();
        assert!(matches!(err, SolveFieldError::InvalidInput { .. }));
    }

    #[test]
    fn solution_satisfies_maxwell_system() {
        let grid = Grid2d::new(48, 40, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(24, 20, Complex64::ONE);
        let solver = FdfdSolver::new();
        let ez = solver.solve_ez(&eps, &j, omega).unwrap();
        let r = solver.residual(&eps, &j, omega, &ez);
        assert!(r < 1e-10, "residual {r}");
    }

    #[test]
    fn direct_and_iterative_backends_agree() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 16, Complex64::ONE);
        let direct = FdfdSolver::new();
        let iterative = FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
            tolerance: 1e-10,
            max_iterations: 200_000,
        }));
        let e1 = direct.solve_ez(&eps, &j, omega).unwrap();
        let e2 = iterative.solve_ez(&eps, &j, omega).unwrap();
        assert!(e1.normalized_l2_distance(&e2) < 1e-6);
    }

    #[test]
    fn nan_input_is_caught_by_output_validation() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 16, Complex64::new(f64::NAN, 0.0));
        let err = FdfdSolver::new()
            .solve_ez(&eps, &j, maps_core::omega_for_wavelength(1.55))
            .unwrap_err();
        assert!(
            matches!(err, SolveFieldError::NonFinite { .. }),
            "NaN must not escape silently: {err:?}"
        );
    }

    #[test]
    fn relaxed_entry_point_rescues_tight_iterative_solve() {
        let grid = Grid2d::new(36, 32, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(18, 16, Complex64::ONE);
        // A tolerance this problem cannot reach within the iteration
        // budget fails tight...
        let solver = FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
            tolerance: 1e-9,
            max_iterations: 400,
        }));
        let tight = solver.solve_ez(&eps, &j, omega);
        assert!(tight.is_err(), "1e-9 should not converge in 400 iterations");
        // ...but succeeds once relaxed by 1e3 (→ 1e-6), and the rescued
        // field genuinely solves Maxwell at the relaxed tolerance.
        let ez = solver.solve_ez_relaxed(&eps, &j, omega, 1e3).unwrap();
        let r = solver.residual(&eps, &j, omega, &ez);
        assert!(r < 1e-4, "residual {r}");
    }

    #[test]
    fn point_source_wavelength_matches_medium() {
        // In a uniform medium of index n, the radiated wavelength is λ/n.
        // Verify via the phase progression of Ez along a radius.
        let grid = Grid2d::new(96, 96, 0.05);
        let n_medium: f64 = 2.0;
        let eps = RealField2d::constant(grid, n_medium * n_medium);
        let lambda0 = 1.55;
        let omega = maps_core::omega_for_wavelength(lambda0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(48, 48, Complex64::ONE);
        let ez = FdfdSolver::new().solve_ez(&eps, &j, omega).unwrap();
        // Count phase advance over a stretch away from source and PML.
        let mut total_dphi = 0.0;
        for ix in 58..80 {
            let p0 = ez.get(ix, 48).arg();
            let p1 = ez.get(ix + 1, 48).arg();
            let mut d = p1 - p0;
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            total_dphi += d.abs();
        }
        let k_measured = total_dphi / (22.0 * grid.dl);
        let k_expected = omega * n_medium;
        assert!(
            (k_measured - k_expected).abs() / k_expected < 0.05,
            "k measured {k_measured} vs expected {k_expected}"
        );
    }
}
