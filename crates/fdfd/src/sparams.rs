//! Full scattering-matrix extraction.
//!
//! Loops the eigenmode excitation over every port of a device and records
//! the complex modal amplitude coupled into every other port — the
//! S-parameter matrix black-box models are trained on, and a convenient
//! verification harness (reciprocity `S = Sᵀ`, passivity `‖S·a‖ ≤ ‖a‖`).

use crate::modes::ModeError;
use crate::monitor::ModeMonitor;
use crate::simulation::FdfdSolver;
use crate::source::ModeSource;
use maps_core::{FieldSolver, Port, RealField2d, SolveFieldError};
use maps_linalg::ZMatrix;

/// Errors from S-matrix extraction.
#[derive(Debug)]
#[non_exhaustive]
pub enum SMatrixError {
    /// A port guided no eigenmode.
    Mode(ModeError),
    /// A field solve failed.
    Solve(SolveFieldError),
}

impl std::fmt::Display for SMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SMatrixError::Mode(e) => write!(f, "mode solver: {e}"),
            SMatrixError::Solve(e) => write!(f, "field solver: {e}"),
        }
    }
}

impl std::error::Error for SMatrixError {}

impl From<ModeError> for SMatrixError {
    fn from(e: ModeError) -> Self {
        SMatrixError::Mode(e)
    }
}

impl From<SolveFieldError> for SMatrixError {
    fn from(e: SolveFieldError) -> Self {
        SMatrixError::Solve(e)
    }
}

/// The scattering matrix of a multi-port structure.
#[derive(Debug, Clone)]
pub struct SMatrix {
    /// `s[(q, p)]` is the amplitude leaving port `q` when port `p` is
    /// excited with unit incident modal power.
    pub s: ZMatrix,
    /// The ports, in matrix order.
    pub ports: Vec<Port>,
}

impl SMatrix {
    /// Computes the S-matrix of a structure by exciting each port in turn.
    ///
    /// Amplitudes are normalized so that `|S_qp|²` is the power fraction
    /// coupled from port `p`'s incident mode into port `q`'s outgoing mode
    /// (the incident power is measured by the port's own monitor just after
    /// the source).
    ///
    /// # Errors
    ///
    /// Returns [`SMatrixError`] when a port guides no mode or a solve
    /// fails.
    pub fn compute(
        solver: &FdfdSolver,
        eps_r: &RealField2d,
        ports: &[Port],
        omega: f64,
    ) -> Result<SMatrix, SMatrixError> {
        let n = ports.len();
        let grid = eps_r.grid();
        let monitors: Vec<ModeMonitor> = ports
            .iter()
            .map(|p| ModeMonitor::new(eps_r, p, omega))
            .collect::<Result<_, _>>()?;
        let mut s = ZMatrix::zeros(n, n);
        for (p, port) in ports.iter().enumerate() {
            // Port directions point *out* of the device; the excitation
            // must launch the opposite way, into it.
            let inward = Port {
                direction: match port.direction {
                    maps_core::Direction::Positive => maps_core::Direction::Negative,
                    maps_core::Direction::Negative => maps_core::Direction::Positive,
                },
                ..*port
            };
            let source = ModeSource::new(eps_r, &inward, omega)?;
            let j = source.current_density(grid);
            let ez = solver.solve_ez(eps_r, &j, omega)?;
            // The self-port monitor must sit a few cells inside the device,
            // away from the source plane where the two injection lines make
            // the near field non-modal.
            let offset = 4.0 * grid.dl;
            let shifted_center = match (port.axis, port.direction) {
                (maps_core::Axis::X, maps_core::Direction::Negative) => {
                    (port.center.0 + offset, port.center.1)
                }
                (maps_core::Axis::X, maps_core::Direction::Positive) => {
                    (port.center.0 - offset, port.center.1)
                }
                (maps_core::Axis::Y, maps_core::Direction::Negative) => {
                    (port.center.0, port.center.1 + offset)
                }
                (maps_core::Axis::Y, maps_core::Direction::Positive) => {
                    (port.center.0, port.center.1 - offset)
                }
            };
            let self_monitor = ModeMonitor::new(
                eps_r,
                &Port {
                    center: shifted_center,
                    ..*port
                },
                omega,
            )?;
            // Launched amplitude: the wave travelling into the device
            // (the monitor's "incoming" direction).
            let launched = self_monitor.incoming_functional().eval(&ez);
            let norm = launched.abs().max(1e-300);
            for (q, monitor) in monitors.iter().enumerate() {
                // Every S_qp (including the reflection S_pp) is the wave
                // leaving the device through port q.
                let amp = if q == p {
                    self_monitor.outgoing_functional().eval(&ez)
                } else {
                    monitor.outgoing_functional().eval(&ez)
                };
                s[(q, p)] = amp / norm;
            }
        }
        Ok(SMatrix {
            s,
            ports: ports.to_vec(),
        })
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Power transmission `|S_qp|²`.
    pub fn power(&self, q: usize, p: usize) -> f64 {
        self.s[(q, p)].norm_sqr()
    }

    /// Maximum asymmetry `|S_qp − S_pq|` over all off-diagonal pairs —
    /// ideally zero by Lorentz reciprocity.
    pub fn reciprocity_deficit(&self) -> f64 {
        let n = self.num_ports();
        let mut worst: f64 = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                worst = worst.max((self.s[(q, p)] - self.s[(p, q)]).abs());
            }
        }
        worst
    }

    /// Largest column power sum `Σ_q |S_qp|²` — must not exceed 1 for a
    /// passive device (up to numerical/radiation accounting).
    pub fn max_column_power(&self) -> f64 {
        let n = self.num_ports();
        (0..n)
            .map(|p| (0..n).map(|q| self.power(q, p)).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pml::PmlConfig;
    use maps_core::{Axis, Direction, Grid2d, Rect, Shape};

    /// A straight waveguide's 2×2 S-matrix: |S21| ≈ 1, |S11| ≈ 0.
    #[test]
    fn straight_waveguide_smatrix() {
        let grid = Grid2d::new(80, 50, 0.05);
        let yc = grid.height() / 2.0;
        let mut eps = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut eps,
            &Shape::Rect(Rect::new(0.0, yc - 0.24, grid.width(), yc + 0.24)),
            12.11,
        );
        let omega = maps_core::omega_for_wavelength(1.55);
        let ports = vec![
            Port::new((1.2, yc), 0.48, Axis::X, Direction::Negative), // faces out left
            Port::new((grid.width() - 1.2, yc), 0.48, Axis::X, Direction::Positive),
        ];
        let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
        let sm = SMatrix::compute(&solver, &eps, &ports, omega).unwrap();
        assert!(
            sm.power(1, 0) > 0.85,
            "through transmission |S21|² = {}",
            sm.power(1, 0)
        );
        assert!(
            sm.power(0, 0) < 0.05,
            "reflection |S11|² = {}",
            sm.power(0, 0)
        );
        // Reciprocity within discretization error.
        assert!(
            sm.reciprocity_deficit() < 0.1,
            "reciprocity deficit {}",
            sm.reciprocity_deficit()
        );
        // Passivity (no gain).
        assert!(
            sm.max_column_power() < 1.2,
            "column power {}",
            sm.max_column_power()
        );
    }
}
