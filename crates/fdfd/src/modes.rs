//! 1-D slab waveguide eigenmode solver.
//!
//! A port's cross-section reduces the 2-D Helmholtz equation to the
//! eigenproblem `(d²/dt² + ω²ε(t)) φ = β² φ` on the transverse line.
//! Guided modes are the eigenpairs with `β² > ω²·ε_cladding`; `β` is the
//! propagation constant and `n_eff = β/ω` the effective index.

use maps_core::{Axis, Grid2d, Port, RealField2d};
use maps_linalg::{symmetric_eigen, DMatrix};

/// A solved slab waveguide mode on a transverse line of the grid.
#[derive(Debug, Clone)]
pub struct SlabMode {
    /// Propagation constant β (rad/µm).
    pub beta: f64,
    /// Effective index `β/ω`.
    pub neff: f64,
    /// Real transverse profile φ(t), one entry per transverse cell,
    /// normalized to unit modal power: `(β/2ω)·Σφ²·dl = 1`.
    pub profile: Vec<f64>,
    /// Angular frequency the mode was solved at.
    pub omega: f64,
    /// Grid spacing along the transverse line (µm).
    pub dl: f64,
}

impl SlabMode {
    /// Modal power carried by an amplitude-`a` excitation: `|a|²` after the
    /// unit-power normalization applied here.
    pub fn power_normalization(&self) -> f64 {
        self.beta / (2.0 * self.omega) * self.profile.iter().map(|p| p * p).sum::<f64>() * self.dl
    }
}

/// Error from the mode solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModeError {
    /// No guided mode exists at the requested index.
    NotGuided {
        /// The eigenmode index that was requested.
        requested: usize,
        /// How many guided modes the cross-section supports.
        available: usize,
    },
}

impl std::fmt::Display for ModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModeError::NotGuided {
                requested,
                available,
            } => write!(
                f,
                "eigenmode {requested} is not guided (cross-section supports {available} guided modes)"
            ),
        }
    }
}

impl std::error::Error for ModeError {}

/// Solves the guided modes of a 1-D permittivity profile.
///
/// `eps_line` is the permittivity sampled along the transverse line with
/// spacing `dl`. Returns modes sorted by decreasing `β` (fundamental first),
/// keeping only those guided with respect to the minimum permittivity of the
/// line (the cladding).
pub fn solve_slab_modes(eps_line: &[f64], dl: f64, omega: f64) -> Vec<SlabMode> {
    let n = eps_line.len();
    assert!(n >= 3, "transverse line too short for mode solving");
    let inv_dl2 = 1.0 / (dl * dl);
    let mut m = DMatrix::zeros(n, n);
    for i in 0..n {
        m[(i, i)] = -2.0 * inv_dl2 + omega * omega * eps_line[i];
        if i > 0 {
            m[(i, i - 1)] = inv_dl2;
        }
        if i + 1 < n {
            m[(i, i + 1)] = inv_dl2;
        }
    }
    let eig = symmetric_eigen(&m);
    let eps_clad = eps_line.iter().copied().fold(f64::INFINITY, f64::min);
    let cutoff = omega * omega * eps_clad;
    let mut modes = Vec::new();
    for (k, &beta2) in eig.values.iter().enumerate() {
        if beta2 <= cutoff || beta2 <= 0.0 {
            break; // eigenvalues are sorted descending; the rest are radiative
        }
        let beta = beta2.sqrt();
        let mut profile: Vec<f64> = (0..n).map(|r| eig.vectors[(r, k)]).collect();
        // Deterministic sign: peak positive.
        let (imax, _) = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
            .expect("non-empty profile");
        if profile[imax] < 0.0 {
            for p in profile.iter_mut() {
                *p = -*p;
            }
        }
        // Normalize to unit modal power.
        let raw_power = beta / (2.0 * omega) * profile.iter().map(|p| p * p).sum::<f64>() * dl;
        let scale = 1.0 / raw_power.sqrt();
        for p in profile.iter_mut() {
            *p *= scale;
        }
        modes.push(SlabMode {
            beta,
            neff: beta / omega,
            profile,
            omega,
            dl,
        });
    }
    modes
}

/// The cells making up a port's transverse cross-section line.
///
/// Returns `(cells, eps_line)` where `cells` are `(ix, iy)` pairs ordered
/// along the transverse axis. The line spans the port width plus one port
/// width of cladding on each side (clamped to the grid) so evanescent tails
/// are captured.
pub fn port_cross_section(
    port: &Port,
    eps_r: &RealField2d,
    along: f64,
) -> (Vec<(usize, usize)>, Vec<f64>) {
    let grid: Grid2d = eps_r.grid();
    let (cx, cy) = port.center;
    let half_span = port.width * 1.5;
    match port.axis {
        Axis::X => {
            // propagation along x; transverse line is vertical at x = along
            let (ix, _) = grid.cell_at(along, cy);
            let (_, iy0) = grid.cell_at(cx, cy - half_span);
            let (_, iy1) = grid.cell_at(cx, cy + half_span);
            let cells: Vec<(usize, usize)> = (iy0..=iy1).map(|iy| (ix, iy)).collect();
            let eps = cells.iter().map(|&(ix, iy)| eps_r.get(ix, iy)).collect();
            (cells, eps)
        }
        Axis::Y => {
            let (_, iy) = grid.cell_at(cx, along);
            let (ix0, _) = grid.cell_at(cx - half_span, cy);
            let (ix1, _) = grid.cell_at(cx + half_span, cy);
            let cells: Vec<(usize, usize)> = (ix0..=ix1).map(|ix| (ix, iy)).collect();
            let eps = cells.iter().map(|&(ix, iy)| eps_r.get(ix, iy)).collect();
            (cells, eps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab(n: usize, core_lo: usize, core_hi: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i >= core_lo && i < core_hi {
                    12.11
                } else {
                    2.07
                }
            })
            .collect()
    }

    #[test]
    fn fundamental_mode_of_symmetric_slab() {
        // 0.5 µm silicon slab in silica at λ = 1.55 µm.
        let dl = 0.05;
        let omega = maps_core::omega_for_wavelength(1.55);
        let eps = slab(60, 25, 35);
        let modes = solve_slab_modes(&eps, dl, omega);
        assert!(!modes.is_empty(), "slab must guide at least one mode");
        let m0 = &modes[0];
        // Effective index must lie between cladding and core indices.
        assert!(
            m0.neff > 2.07f64.sqrt() && m0.neff < 12.11f64.sqrt(),
            "neff = {}",
            m0.neff
        );
        // Fundamental mode is even: profile peak near the centre.
        let peak = m0
            .profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((25..35).contains(&peak), "peak at {peak}");
        // Unit-power normalization.
        assert!((m0.power_normalization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modes_sorted_by_decreasing_beta() {
        let dl = 0.05;
        let omega = maps_core::omega_for_wavelength(1.55);
        // Wide slab supports several modes.
        let eps = slab(80, 20, 60);
        let modes = solve_slab_modes(&eps, dl, omega);
        assert!(modes.len() >= 2, "wide slab should be multimode");
        for w in modes.windows(2) {
            assert!(w[0].beta > w[1].beta);
        }
        // Second mode is odd: profile changes sign.
        let has_sign_change = modes[1]
            .profile
            .windows(2)
            .any(|p| p[0].signum() != p[1].signum() && p[0].abs() > 1e-6 && p[1].abs() > 1e-6);
        assert!(has_sign_change);
    }

    #[test]
    fn uniform_low_index_line_has_no_guided_mode() {
        let omega = maps_core::omega_for_wavelength(1.55);
        let eps = vec![2.07; 50];
        let modes = solve_slab_modes(&eps, 0.05, omega);
        assert!(modes.is_empty());
    }

    #[test]
    fn mode_profile_decays_into_cladding() {
        let dl = 0.05;
        let omega = maps_core::omega_for_wavelength(1.55);
        let eps = slab(80, 35, 45);
        let modes = solve_slab_modes(&eps, dl, omega);
        let p = &modes[0].profile;
        assert!(
            p[0].abs() < 1e-3 * p[40].abs(),
            "tail {} vs peak {}",
            p[0],
            p[40]
        );
    }
}
