//! Current-density sources.
//!
//! The workhorse is the unidirectional eigenmode source: two adjacent
//! transverse current lines phased so the backward-radiated wave cancels,
//! leaving a clean guided mode launched through the port.

use crate::modes::{port_cross_section, solve_slab_modes, ModeError, SlabMode};
use maps_core::{Axis, ComplexField2d, Direction, Port, RealField2d};
use maps_linalg::Complex64;

/// A mode source ready to be stamped into a current-density field.
#[derive(Debug, Clone)]
pub struct ModeSource {
    /// The solved transverse mode being launched.
    pub mode: SlabMode,
    /// Cells of the primary source line.
    pub cells: Vec<(usize, usize)>,
    /// Port this source was built for.
    pub port: Port,
}

impl ModeSource {
    /// Solves the port's eigenmode on the given permittivity map and builds
    /// the source.
    ///
    /// # Errors
    ///
    /// Returns [`ModeError::NotGuided`] when the cross-section supports
    /// fewer guided modes than `port.mode_index + 1`.
    pub fn new(eps_r: &RealField2d, port: &Port, omega: f64) -> Result<Self, ModeError> {
        let along = match port.axis {
            Axis::X => port.center.0,
            Axis::Y => port.center.1,
        };
        let (cells, eps_line) = port_cross_section(port, eps_r, along);
        let modes = solve_slab_modes(&eps_line, eps_r.grid().dl, omega);
        if port.mode_index >= modes.len() {
            return Err(ModeError::NotGuided {
                requested: port.mode_index,
                available: modes.len(),
            });
        }
        Ok(ModeSource {
            mode: modes[port.mode_index].clone(),
            cells,
            port: *port,
        })
    }

    /// Stamps the unidirectional two-line source into a fresh current
    /// density field `Jz`.
    ///
    /// The two lines sit at the port plane and one cell behind it
    /// (relative to the launch direction) with relative amplitude
    /// `−e^{iβ·dl}`, which cancels the backward wave.
    pub fn current_density(&self, grid: maps_core::Grid2d) -> ComplexField2d {
        let mut j = ComplexField2d::zeros(grid);
        let dl = grid.dl;
        let phase = Complex64::cis(self.mode.beta * dl);
        let sign = self.port.direction;
        for (k, &(ix, iy)) in self.cells.iter().enumerate() {
            let amp = Complex64::from_re(self.mode.profile[k]);
            j.set(ix, iy, j.get(ix, iy) + amp);
            // The cancellation line sits one cell opposite the launch
            // direction along the propagation axis.
            let behind = match (self.port.axis, sign) {
                (Axis::X, Direction::Positive) => (ix.checked_sub(1), Some(iy)),
                (Axis::X, Direction::Negative) => {
                    (if ix + 1 < grid.nx { Some(ix + 1) } else { None }, Some(iy))
                }
                (Axis::Y, Direction::Positive) => (Some(ix), iy.checked_sub(1)),
                (Axis::Y, Direction::Negative) => {
                    (Some(ix), if iy + 1 < grid.ny { Some(iy + 1) } else { None })
                }
            };
            if let (Some(bx), Some(by)) = behind {
                j.set(bx, by, j.get(bx, by) - amp * phase);
            }
        }
        j
    }
}

/// A point dipole source at the cell nearest `(x, y)` with the given
/// complex amplitude.
pub fn point_source(
    grid: maps_core::Grid2d,
    x: f64,
    y: f64,
    amplitude: Complex64,
) -> ComplexField2d {
    let mut j = ComplexField2d::zeros(grid);
    let (ix, iy) = grid.cell_at(x, y);
    j.set(ix, iy, amplitude);
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::{Grid2d, Rect, Shape};

    fn waveguide_eps(grid: Grid2d) -> RealField2d {
        let mut eps = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut eps,
            &Shape::Rect(Rect::new(
                0.0,
                grid.height() / 2.0 - 0.25,
                grid.width(),
                grid.height() / 2.0 + 0.25,
            )),
            12.11,
        );
        eps
    }

    #[test]
    fn mode_source_stamps_two_lines() {
        let grid = Grid2d::new(80, 60, 0.05);
        let eps = waveguide_eps(grid);
        let port = Port::new(
            (1.0, grid.height() / 2.0),
            0.5,
            Axis::X,
            Direction::Positive,
        );
        let src = ModeSource::new(&eps, &port, maps_core::omega_for_wavelength(1.55)).unwrap();
        let j = src.current_density(grid);
        // Nonzero on exactly two adjacent columns.
        let mut cols: Vec<usize> = Vec::new();
        for ix in 0..grid.nx {
            let any = (0..grid.ny).any(|iy| j.get(ix, iy) != Complex64::ZERO);
            if any {
                cols.push(ix);
            }
        }
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1] - cols[0], 1);
    }

    #[test]
    fn requesting_missing_mode_errors() {
        let grid = Grid2d::new(80, 60, 0.05);
        let eps = waveguide_eps(grid);
        let port = Port::new(
            (1.0, grid.height() / 2.0),
            0.5,
            Axis::X,
            Direction::Positive,
        )
        .with_mode(5);
        let err = ModeSource::new(&eps, &port, maps_core::omega_for_wavelength(1.55)).unwrap_err();
        assert!(matches!(err, ModeError::NotGuided { requested: 5, .. }));
    }

    #[test]
    fn point_source_single_cell() {
        let grid = Grid2d::new(10, 10, 0.1);
        let j = point_source(grid, 0.55, 0.35, Complex64::I);
        assert_eq!(j.get(5, 3), Complex64::I);
        let nnz = j
            .as_slice()
            .iter()
            .filter(|z| **z != Complex64::ZERO)
            .count();
        assert_eq!(nnz, 1);
    }
}
