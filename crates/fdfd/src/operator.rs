//! Assembly of the 2-D `Ez`-polarization Helmholtz operator.
//!
//! With normalized units (`ε₀ = μ₀ = c = 1`) and the `e^{−iωt}` convention,
//! the governing equation for the out-of-plane electric phasor is
//!
//! ```text
//!   (∂x (1/sx̄) ∂x (1/sx) + ∂y (1/sȳ) ∂y (1/sy) + ω² εr) Ez = −i ω Jz
//! ```
//!
//! where `s` are the PML stretch factors. The operator is assembled as a
//! banded matrix with bandwidth `nx` (fields stored row-major by `iy`), or
//! as a CSR matrix for the iterative backend and the dataset's rich
//! "Maxwell matrix" labels.

use crate::pml::PmlConfig;
use maps_core::{Grid2d, RealField2d};
use maps_linalg::{BandedMatrix, Complex64, CooMatrix, CsrMatrix};

/// The 5-point stencil of one grid row of the Helmholtz operator.
#[derive(Debug, Clone, Copy)]
struct Stencil {
    center: Complex64,
    west: Complex64,
    east: Complex64,
    south: Complex64,
    north: Complex64,
}

/// Precomputed stencil data for the whole grid.
#[derive(Debug, Clone)]
pub struct HelmholtzOperator {
    grid: Grid2d,
    omega: f64,
    stencils: Vec<Stencil>,
}

impl HelmholtzOperator {
    /// Assembles the operator for a permittivity map at angular frequency
    /// `omega` with the given PML.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is not positive or the PML is thicker than half the
    /// grid in either direction.
    pub fn new(eps_r: &RealField2d, omega: f64, pml: &PmlConfig) -> Self {
        assert!(omega > 0.0, "omega must be positive");
        let grid = eps_r.grid();
        assert!(
            2 * pml.thickness < grid.nx && 2 * pml.thickness < grid.ny,
            "pml thicker than grid"
        );
        let dl = grid.dl;
        let inv_dl2 = 1.0 / (dl * dl);
        // sx̄/sȳ on integer points, sx/sy on half-integer (staggered) points.
        let sxb = pml.stretch_factors(grid.nx, dl, omega, 0.0);
        let sxf = pml.stretch_factors(grid.nx, dl, omega, 0.5);
        let syb = pml.stretch_factors(grid.ny, dl, omega, 0.0);
        let syf = pml.stretch_factors(grid.ny, dl, omega, 0.5);
        let inv_sxb: Vec<Complex64> = sxb.iter().map(|s| s.recip()).collect();
        let inv_sxf: Vec<Complex64> = sxf.iter().map(|s| s.recip()).collect();
        let inv_syb: Vec<Complex64> = syb.iter().map(|s| s.recip()).collect();
        let inv_syf: Vec<Complex64> = syf.iter().map(|s| s.recip()).collect();

        let w2 = omega * omega;
        let mut stencils = Vec::with_capacity(grid.len());
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                // (Dxf Dxb E)[i] = cᵢ [ (E[i+1]−E[i])/s̄[i+1] − (E[i]−E[i−1])/s̄[i] ]
                // with cᵢ = 1/(dl²·s[i+½]); Dirichlet walls drop the
                // out-of-range neighbours.
                let cx = inv_sxf[ix] * inv_dl2;
                let cy = inv_syf[iy] * inv_dl2;
                let east = if ix + 1 < grid.nx {
                    cx * inv_sxb[ix + 1]
                } else {
                    Complex64::ZERO
                };
                let west = if ix > 0 {
                    cx * inv_sxb[ix]
                } else {
                    Complex64::ZERO
                };
                let north = if iy + 1 < grid.ny {
                    cy * inv_syb[iy + 1]
                } else {
                    Complex64::ZERO
                };
                let south = if iy > 0 {
                    cy * inv_syb[iy]
                } else {
                    Complex64::ZERO
                };
                // Diagonal keeps the full stencil weight even at walls
                // (Dirichlet: the neighbour field is zero, not the coupling).
                let mut center = Complex64::ZERO;
                if ix + 1 < grid.nx {
                    center -= cx * inv_sxb[ix + 1];
                }
                center -= cx * inv_sxb[ix];
                if iy + 1 < grid.ny {
                    center -= cy * inv_syb[iy + 1];
                }
                center -= cy * inv_syb[iy];
                center += Complex64::from_re(w2 * eps_r.get(ix, iy));
                stencils.push(Stencil {
                    center,
                    west,
                    east,
                    south,
                    north,
                });
            }
        }
        HelmholtzOperator {
            grid,
            omega,
            stencils,
        }
    }

    /// The grid the operator acts on.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Angular frequency the operator was assembled at.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Assembles the banded-matrix form (bandwidth `nx`).
    pub fn to_banded(&self) -> BandedMatrix {
        let n = self.grid.len();
        let nx = self.grid.nx;
        let mut a = BandedMatrix::zeros(n, nx, nx);
        for iy in 0..self.grid.ny {
            for ix in 0..nx {
                let k = self.grid.idx(ix, iy);
                let s = &self.stencils[k];
                a.set(k, k, s.center);
                if ix > 0 {
                    a.set(k, k - 1, s.west);
                }
                if ix + 1 < nx {
                    a.set(k, k + 1, s.east);
                }
                if iy > 0 {
                    a.set(k, k - nx, s.south);
                }
                if iy + 1 < self.grid.ny {
                    a.set(k, k + nx, s.north);
                }
            }
        }
        a
    }

    /// Assembles the sparse CSR form (used by BiCGSTAB and exported as the
    /// "Maxwell equation matrix" rich label).
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.grid.len();
        let nx = self.grid.nx;
        let mut coo = CooMatrix::new(n, n);
        for iy in 0..self.grid.ny {
            for ix in 0..nx {
                let k = self.grid.idx(ix, iy);
                let s = &self.stencils[k];
                coo.push(k, k, s.center);
                if ix > 0 {
                    coo.push(k, k - 1, s.west);
                }
                if ix + 1 < nx {
                    coo.push(k, k + 1, s.east);
                }
                if iy > 0 {
                    coo.push(k, k - nx, s.south);
                }
                if iy + 1 < self.grid.ny {
                    coo.push(k, k + nx, s.north);
                }
            }
        }
        coo.to_csr()
    }

    /// Applies the operator to a field vector without materializing a
    /// matrix: `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != grid.len()`.
    pub fn apply(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.grid.len(), "operator apply size mismatch");
        let nx = self.grid.nx;
        let ny = self.grid.ny;
        let mut y = vec![Complex64::ZERO; x.len()];
        for iy in 0..ny {
            for ix in 0..nx {
                let k = iy * nx + ix;
                let s = &self.stencils[k];
                let mut acc = s.center * x[k];
                if ix > 0 {
                    acc += s.west * x[k - 1];
                }
                if ix + 1 < nx {
                    acc += s.east * x[k + 1];
                }
                if iy > 0 {
                    acc += s.south * x[k - nx];
                }
                if iy + 1 < ny {
                    acc += s.north * x[k + nx];
                }
                y[k] = acc;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_linalg::dense::znorm;

    fn setup() -> HelmholtzOperator {
        let grid = Grid2d::new(32, 28, 0.05);
        let mut eps = RealField2d::constant(grid, 1.0);
        eps.set(16, 14, 12.0);
        HelmholtzOperator::new(
            &eps,
            maps_core::omega_for_wavelength(1.55),
            &PmlConfig::default(),
        )
    }

    #[test]
    fn banded_csr_and_apply_agree() {
        let op = setup();
        let n = op.grid().len();
        let x: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.013).cos()))
            .collect();
        let via_apply = op.apply(&x);
        let via_banded = op.to_banded().matvec(&x);
        let via_csr = op.to_csr().matvec(&x);
        let d1: Vec<Complex64> = via_apply
            .iter()
            .zip(&via_banded)
            .map(|(a, b)| *a - *b)
            .collect();
        let d2: Vec<Complex64> = via_apply
            .iter()
            .zip(&via_csr)
            .map(|(a, b)| *a - *b)
            .collect();
        assert!(znorm(&d1) < 1e-10);
        assert!(znorm(&d2) < 1e-10);
    }

    #[test]
    fn interior_stencil_is_discrete_laplacian_plus_eps() {
        // Away from the PML, applying the operator to a constant field must
        // give ω²ε (the Laplacian of a constant vanishes for interior cells).
        let grid = Grid2d::new(40, 40, 0.1);
        let eps = RealField2d::constant(grid, 4.0);
        let omega = 2.0;
        let op = HelmholtzOperator::new(&eps, omega, &PmlConfig::default());
        let x = vec![Complex64::ONE; grid.len()];
        let y = op.apply(&x);
        let k = grid.idx(20, 20);
        let expect = omega * omega * 4.0;
        assert!((y[k] - Complex64::from_re(expect)).abs() < 1e-9, "{}", y[k]);
    }

    #[test]
    fn operator_is_complex_symmetric() {
        // The scalar Helmholtz operator with SC-PML assembled this way is
        // complex symmetric up to the staggered PML factors; verify the
        // transpose matvec matches the normal one on symmetric inputs by
        // comparing entries directly.
        let op = setup();
        let a = op.to_csr();
        let mut max_asym: f64 = 0.0;
        for (i, j, v) in a.iter() {
            let w = a.get(j, i);
            // symmetric in the interior; PML rows may differ slightly
            max_asym = max_asym.max((v - w).abs() / (1.0 + v.abs()));
        }
        // Not asserting exact symmetry — just that the structure is sane
        // (finite, bounded asymmetry from staggering).
        assert!(max_asym.is_finite());
    }

    #[test]
    #[should_panic(expected = "pml thicker")]
    fn rejects_oversized_pml() {
        let grid = Grid2d::new(10, 10, 0.05);
        let eps = RealField2d::constant(grid, 1.0);
        HelmholtzOperator::new(&eps, 4.0, &PmlConfig::default());
    }
}
