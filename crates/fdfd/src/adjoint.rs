//! Adjoint sensitivity analysis.
//!
//! For the system `A(ε)·e = b` and a real objective
//! `F = Σ_m c_m·|a_m|²` built from linear functionals `a_m = w_mᵀ·e`
//! (modal amplitudes), the gradient with respect to each cell's relative
//! permittivity is
//!
//! ```text
//!   dF/dε_k = −2·ω²·Re( e_adj[k] · e[k] ),
//!   Aᵀ·e_adj = Σ_m c_m·conj(a_m)·w_m .
//! ```
//!
//! One extra transpose solve (reusing the forward LU factorization) yields
//! the full-field gradient — the core of MAPS-InvDes and the "adjoint
//! gradient" rich label of MAPS-Data.

use crate::monitor::LinearFunctional;
use crate::simulation::FdfdSolver;
use maps_core::{ComplexField2d, RealField2d, SolveFieldError};
use maps_linalg::Complex64;

/// A differentiable power objective `F = Σ_m c_m·|a_m(e)|²`.
#[derive(Debug, Clone, Default)]
pub struct PowerObjective {
    terms: Vec<(LinearFunctional, f64)>,
}

impl PowerObjective {
    /// Creates an empty objective.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a term `coefficient · |functional(e)|²`. Positive coefficients
    /// reward power (e.g. transmission), negative ones penalize it
    /// (e.g. reflection or crosstalk).
    pub fn with_term(mut self, functional: LinearFunctional, coefficient: f64) -> Self {
        self.terms.push((functional, coefficient));
        self
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the objective has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates `F(e)`.
    pub fn eval(&self, ez: &ComplexField2d) -> f64 {
        self.terms
            .iter()
            .map(|(w, c)| c * w.eval(ez).norm_sqr())
            .sum()
    }

    /// The adjoint right-hand side `∂F/∂e = Σ_m c_m·conj(a_m)·w_m`
    /// evaluated at the forward solution.
    pub fn adjoint_rhs(&self, ez: &ComplexField2d) -> Vec<Complex64> {
        let n = ez.grid().len();
        let mut rhs = vec![Complex64::ZERO; n];
        for (w, c) in &self.terms {
            let a = w.eval(ez);
            let factor = a.conj() * *c;
            for &(k, wk) in &w.weights {
                rhs[k] += factor * wk;
            }
        }
        rhs
    }
}

/// Result of a combined forward + adjoint solve.
#[derive(Debug, Clone)]
pub struct AdjointSolution {
    /// Forward field `e`.
    pub forward: ComplexField2d,
    /// Adjoint field `e_adj` (solution of the transposed system).
    pub adjoint: ComplexField2d,
    /// Objective value `F(e)`.
    pub objective: f64,
    /// `dF/dε_r` for every grid cell.
    pub gradient: RealField2d,
}

/// Solves the forward and adjoint systems and assembles the permittivity
/// gradient. The banded LU factorization is computed once and shared by
/// both solves.
///
/// # Errors
///
/// Returns [`SolveFieldError`] when the inputs are inconsistent or the
/// factorization fails.
pub fn solve_with_adjoint(
    solver: &FdfdSolver,
    eps_r: &RealField2d,
    source: &ComplexField2d,
    omega: f64,
    objective: &PowerObjective,
) -> Result<AdjointSolution, SolveFieldError> {
    if eps_r.grid() != source.grid() {
        return Err(SolveFieldError::GridMismatch {
            detail: "eps and source grids differ".into(),
        });
    }
    if !(omega.is_finite() && omega > 0.0) {
        return Err(SolveFieldError::InvalidInput {
            detail: "omega must be positive and finite".into(),
        });
    }
    let _span = maps_obs::span("fdfd.solve_with_adjoint").field("cells", eps_r.grid().len());
    maps_obs::counter("fdfd.forward_solves").inc();
    maps_obs::counter("fdfd.adjoint_solves").inc();
    // Shared via the factorization cache: within this call the forward and
    // transposed solves reuse one LU, and across calls a repeated design
    // (e.g. an S-param sweep after an invdes iteration) skips the
    // factorization entirely.
    let lu = crate::factor_cache::factor(eps_r, omega, solver.pml(), || {
        solver.operator(eps_r, omega).to_banded()
    })
    .map_err(|e| SolveFieldError::Numerical {
        detail: e.to_string(),
    })?;
    let b = FdfdSolver::rhs(source, omega);
    let forward = {
        let _s = maps_obs::span("fdfd.backsub");
        ComplexField2d::from_vec(eps_r.grid(), lu.solve(&b))
    };
    let objective_value = objective.eval(&forward);
    let rhs = objective.adjoint_rhs(&forward);
    let adjoint = {
        let _s = maps_obs::span("fdfd.backsub").field("transposed", true);
        ComplexField2d::from_vec(eps_r.grid(), lu.solve_transposed(&rhs))
    };
    let gradient = gradient_from_fields(&forward, &adjoint, omega);
    Ok(AdjointSolution {
        forward,
        adjoint,
        objective: objective_value,
        gradient,
    })
}

/// Assembles `dF/dε_k = −2ω²·Re(e_adj[k]·e[k])` from forward and adjoint
/// fields — also usable with *predicted* fields from a neural solver
/// (the paper's "Fwd & Adj Field" gradient method, Table II).
pub fn gradient_from_fields(
    forward: &ComplexField2d,
    adjoint: &ComplexField2d,
    omega: f64,
) -> RealField2d {
    assert_eq!(forward.grid(), adjoint.grid(), "field grids differ");
    let w2 = omega * omega;
    let data = forward
        .as_slice()
        .iter()
        .zip(adjoint.as_slice())
        .map(|(e, ea)| -2.0 * w2 * (*ea * *e).re)
        .collect();
    RealField2d::from_vec(forward.grid(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ModeMonitor;
    use crate::source::ModeSource;
    use maps_core::{Axis, Direction, Grid2d, Port, Rect, Shape};

    /// Straight waveguide with a tweakable design cell; check the adjoint
    /// gradient against a central finite difference.
    #[test]
    fn adjoint_gradient_matches_finite_difference() {
        let grid = Grid2d::new(60, 44, 0.08);
        let omega = maps_core::omega_for_wavelength(1.55);
        let yc = grid.height() / 2.0;
        let mut eps = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut eps,
            &Shape::Rect(Rect::new(0.0, yc - 0.24, grid.width(), yc + 0.24)),
            12.11,
        );
        let solver = FdfdSolver::new();
        let in_port = Port::new((1.3, yc), 0.48, Axis::X, Direction::Positive);
        let out_port = Port::new((grid.width() - 1.3, yc), 0.48, Axis::X, Direction::Positive);
        let src = ModeSource::new(&eps, &in_port, omega).unwrap();
        let j = src.current_density(grid);
        let monitor = ModeMonitor::new(&eps, &out_port, omega).unwrap();
        let objective = PowerObjective::new().with_term(monitor.outgoing_functional(), 1.0);

        let sol = solve_with_adjoint(&solver, &eps, &j, omega, &objective).unwrap();
        assert!(sol.objective > 0.0, "waveguide should transmit");

        // Central finite difference on three representative cells.
        let test_cells = [(30, 22), (28, 20), (32, 24)];
        let h = 1e-5;
        for &(ix, iy) in &test_cells {
            let mut ep = eps.clone();
            ep.set(ix, iy, ep.get(ix, iy) + h);
            let mut em = eps.clone();
            em.set(ix, iy, em.get(ix, iy) - h);
            use maps_core::FieldSolver;
            let fp = objective.eval(&solver.solve_ez(&ep, &j, omega).unwrap());
            let fm = objective.eval(&solver.solve_ez(&em, &j, omega).unwrap());
            let fd = (fp - fm) / (2.0 * h);
            let adj = sol.gradient.get(ix, iy);
            let denom = fd.abs().max(adj.abs()).max(1e-12);
            assert!(
                (fd - adj).abs() / denom < 1e-4,
                "cell ({ix},{iy}): fd {fd:.6e} vs adjoint {adj:.6e}"
            );
        }
    }

    #[test]
    fn objective_eval_and_rhs_consistency() {
        // For F = |wᵀe|², the adjoint RHS dotted with e must equal F
        // (Euler's identity for the quadratic form).
        let grid = Grid2d::new(8, 8, 0.1);
        let mut ez = ComplexField2d::zeros(grid);
        for iy in 0..8 {
            for ix in 0..8 {
                ez.set(
                    ix,
                    iy,
                    Complex64::new(ix as f64 * 0.2, iy as f64 * 0.1 - 0.3),
                );
            }
        }
        let w = LinearFunctional {
            weights: vec![
                (3, Complex64::new(1.0, 0.5)),
                (17, Complex64::new(-0.5, 0.2)),
            ],
        };
        let obj = PowerObjective::new().with_term(w, 2.0);
        let f = obj.eval(&ez);
        let rhs = obj.adjoint_rhs(&ez);
        let dot: Complex64 = rhs.iter().zip(ez.as_slice()).map(|(r, e)| *r * *e).sum();
        assert!((dot.re - f).abs() < 1e-12, "{} vs {}", dot.re, f);
    }

    #[test]
    fn empty_objective_gives_zero_gradient() {
        let grid = Grid2d::new(40, 36, 0.08);
        let omega = maps_core::omega_for_wavelength(1.55);
        let eps = RealField2d::constant(grid, 1.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(20, 18, Complex64::ONE);
        let sol = solve_with_adjoint(&FdfdSolver::new(), &eps, &j, omega, &PowerObjective::new())
            .unwrap();
        assert_eq!(sol.objective, 0.0);
        assert!(sol.gradient.as_slice().iter().all(|g| *g == 0.0));
    }
}
