//! Stretched-coordinate perfectly matched layers.
//!
//! The FDFD operator replaces `∂x` with `(1/sx)·∂x` where the complex
//! stretch `s(u) = 1 + i·σ(u)/ω` grows polynomially inside the absorbing
//! layer. With the `e^{−iωt}` phasor convention this damps outgoing waves
//! as `e^{−∫σ du}`.

use maps_linalg::Complex64;

/// PML configuration for one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmlConfig {
    /// Layer thickness in cells on every boundary.
    pub thickness: usize,
    /// Polynomial grading order of the conductivity profile.
    pub order: f64,
    /// Target reflection coefficient at normal incidence.
    pub target_reflection: f64,
}

impl Default for PmlConfig {
    fn default() -> Self {
        PmlConfig {
            thickness: 12,
            order: 3.0,
            target_reflection: 1e-8,
        }
    }
}

impl PmlConfig {
    /// A PML sized for the grid resolution: ~0.8 µm of absorber regardless
    /// of `dl`, clamped to `[4, 16]` cells. Prevents coarse-fidelity grids
    /// from drowning in absorber.
    pub fn auto(dl: f64) -> Self {
        let cells = (0.8 / dl).round().clamp(4.0, 16.0) as usize;
        PmlConfig {
            thickness: cells,
            ..Default::default()
        }
    }

    /// Maximum conductivity `σ_max = −(m+1)·ln(R₀) / (2·d)` for a layer of
    /// physical depth `d` (normalized impedance `η = 1`).
    pub fn sigma_max(&self, dl: f64) -> f64 {
        let d = self.thickness as f64 * dl;
        -(self.order + 1.0) * self.target_reflection.ln() / (2.0 * d)
    }

    /// Complex stretch factors along an axis of `n` cells.
    ///
    /// `offset` shifts the evaluation point by half a cell (0.0 for
    /// integer-grid "backward" factors, 0.5 for the staggered "forward"
    /// factors), matching the Yee staggering of the two first-derivative
    /// operators.
    pub fn stretch_factors(&self, n: usize, dl: f64, omega: f64, offset: f64) -> Vec<Complex64> {
        let t = self.thickness as f64;
        let smax = self.sigma_max(dl);
        (0..n)
            .map(|i| {
                let pos = i as f64 + offset;
                // Depth into the PML measured in cells, from either boundary.
                let depth_lo = t - pos;
                let depth_hi = pos - (n as f64 - 1.0 - t);
                let depth = depth_lo.max(depth_hi).max(0.0);
                if depth <= 0.0 {
                    Complex64::ONE
                } else {
                    let sigma = smax * (depth / t).powf(self.order);
                    Complex64::new(1.0, sigma / omega)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_is_unstretched() {
        let cfg = PmlConfig {
            thickness: 8,
            ..Default::default()
        };
        let s = cfg.stretch_factors(64, 0.05, 4.0, 0.0);
        for k in 10..54 {
            assert_eq!(s[k], Complex64::ONE, "cell {k} should be interior");
        }
    }

    #[test]
    fn boundary_has_positive_imaginary_stretch() {
        let cfg = PmlConfig::default();
        let s = cfg.stretch_factors(64, 0.05, 4.0, 0.0);
        assert!(s[0].im > 0.0);
        assert!(s[63].im > 0.0);
        // Monotone decay of σ moving inward.
        assert!(s[0].im > s[5].im);
        assert!(s[63].im > s[58].im);
    }

    #[test]
    fn profile_is_symmetric() {
        let cfg = PmlConfig::default();
        let s = cfg.stretch_factors(80, 0.05, 4.0, 0.0);
        for k in 0..12 {
            let a = s[k].im;
            let b = s[79 - k].im;
            assert!((a - b).abs() < 1e-12, "asymmetry at {k}: {a} vs {b}");
        }
    }

    #[test]
    fn sigma_max_scales_inversely_with_depth() {
        let cfg = PmlConfig::default();
        assert!(cfg.sigma_max(0.05) > cfg.sigma_max(0.10));
    }
}
