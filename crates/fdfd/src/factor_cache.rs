//! Factorization reuse: one banded LU per (design, frequency, PML).
//!
//! The banded LU factorization is `O(n·nx²)` — the dominant cost of every
//! direct solve — while a substitution sweep is only `O(n·nx)`. Forward,
//! adjoint, repeated monitor, and S-parameter solves against the *same*
//! discretized operator therefore want to share one factorization. This
//! module provides that sharing:
//!
//! - a cheap 128-bit [`Fingerprint`] of the operator inputs (permittivity
//!   bits, `omega`, grid dims, spacing, PML config) identifies "the same
//!   operator" without retaining the inputs; it also carries the
//!   factorization *strategy* (full `f64` vs mixed precision), so toggling
//!   `MAPS_MIXED_PRECISION` can never alias a cached factor of the other
//!   strategy;
//! - a process-wide [`FactorCache`] maps fingerprints to `Arc<Factor>`
//!   (either a full-`f64` banded LU or a mixed-precision
//!   `f32`-factor + `f64`-refinement pair) with bounded capacity and LRU
//!   eviction;
//! - independent of the LRU ring, the cache always retains the **most
//!   recent** factorization, so an adjoint solve immediately following the
//!   forward solve of the same design reuses its factor even when the cache
//!   is disabled (`MAPS_FACTOR_CACHE=0`);
//! - **single-flight coalescing** ([`FactorCache::factorize_coalesced`]):
//!   concurrent misses of the same fingerprint elect one leader to
//!   factorize while followers wait and share the result — the mechanism a
//!   multi-client solve service (`mapsd`) relies on to answer a stampede of
//!   identical designs with one factorization. In-flight bookkeeping is
//!   sharded by fingerprint bits ([`FLIGHT_SHARDS`]) to kill lock
//!   contention between unrelated designs.
//!
//! Reuse is bit-identical by construction: a hit returns the *same*
//! factorization a cold call would recompute (the factorization is a
//! deterministic function of the fingerprinted inputs), so `solve` /
//! `solve_transposed` produce exactly the same bits either way.
//!
//! Telemetry: `fdfd.factor_cache.{hit,miss,evict}` counters in the
//! [`maps_obs`] global registry, plus per-instance [`CacheStats`].
//!
//! The capacity knob is the `MAPS_FACTOR_CACHE` environment variable:
//! unset/empty keeps the default (4 entries), `0`/`off` disables the LRU
//! ring (the last-factor slot stays active), any other integer sets the
//! capacity. A cached factor for an `nx × ny` grid holds
//! `(3·nx + 1)·nx·ny` complex doubles (~25 MB at the default 80×80 device
//! grid), so capacities stay small.
//!
//! The precision knob is `MAPS_MIXED_PRECISION` (read once per process at
//! first factorization): `1`/`on`/`true` makes every leader factorize in
//! `f32` and refine each solve against the exact `f64` operator
//! ([`maps_linalg::MixedBandedLu`]); anything else (or unset) keeps the
//! full-`f64` default. The `fdfd.factorize` span reports the strategy in
//! its `precision` field.

use crate::pml::PmlConfig;
use maps_core::RealField2d;
use maps_linalg::{BandedMatrix, Factor, LinalgError, MixedBandedLu};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Default LRU capacity when `MAPS_FACTOR_CACHE` is unset.
pub const DEFAULT_CAPACITY: usize = 4;

/// Number of independent single-flight registries. Concurrent factorizations
/// of *different* fingerprints coordinate on different shards (selected by
/// fingerprint bits), so a daemon serving many designs at once never
/// serializes its in-flight bookkeeping behind one lock.
pub const FLIGHT_SHARDS: usize = 16;

/// A cheap identity of one assembled Helmholtz operator.
///
/// Two FNV-1a passes with independent offset bases over the raw bit
/// patterns of every input that reaches the operator assembly: permittivity
/// cells, `omega`, grid dims and spacing, and the PML configuration. With
/// 128 independent hash bits, an accidental collision between two *distinct*
/// operators in a cache of single-digit capacity is vanishingly unlikely
/// (birthday bound ≪ 1e-30), and any intentional inputs that differ in even
/// one bit fingerprint differently — which is exactly the invalidation rule
/// bit-identical reuse needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    h: [u64; 2],
    cells: usize,
    /// Factorization strategy this fingerprint keys: mixed-precision
    /// factors and full-`f64` factors of the same operator are distinct
    /// cache entries.
    mixed: bool,
}

impl Fingerprint {
    /// The single-flight shard this fingerprint coordinates on.
    fn shard(&self) -> usize {
        (self.h[0] as usize) % FLIGHT_SHARDS
    }

    /// Returns the fingerprint re-keyed to the given factorization
    /// strategy (tests and special-purpose pipelines; [`fingerprint`]
    /// already applies the process-wide `MAPS_MIXED_PRECISION` mode).
    pub fn with_mixed(mut self, mixed: bool) -> Self {
        self.mixed = mixed;
        self
    }

    /// Whether this fingerprint keys a mixed-precision factor.
    pub fn is_mixed(&self) -> bool {
        self.mixed
    }

    /// The 128-bit digest as 32 hex chars — the stable operator identity
    /// traces and logs use to say *which* factorization a span computed.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.h[0], self.h[1])
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
// Second pass starts from an unrelated offset so the two 64-bit digests are
// independent functions of the input stream.
const FNV_OFFSET_B: u64 = 0x6C62_272E_07BB_0142;

#[derive(Clone, Copy)]
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    fn new() -> Self {
        Fnv2 {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Hash byte-wise: FNV-1a mixes per octet. Pass B sees each byte
        // XOR-masked so the two digests are independent functions of the
        // input stream, not a shared value from two offsets.
        for shift in (0..64).step_by(8) {
            let byte = (v >> shift) & 0xFF;
            self.a = (self.a ^ byte).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ (byte ^ 0xA5)).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

/// Computes the [`Fingerprint`] of the operator assembled from these inputs.
pub fn fingerprint(eps_r: &RealField2d, omega: f64, pml: &PmlConfig) -> Fingerprint {
    let grid = eps_r.grid();
    let mut h = Fnv2::new();
    h.write_u64(grid.nx as u64);
    h.write_u64(grid.ny as u64);
    h.write_f64(grid.dl);
    h.write_f64(omega);
    h.write_u64(pml.thickness as u64);
    h.write_f64(pml.order);
    h.write_f64(pml.target_reflection);
    for v in eps_r.as_slice() {
        h.write_f64(*v);
    }
    Fingerprint {
        h: [h.a, h.b],
        cells: grid.len(),
        mixed: mixed_precision(),
    }
}

/// Whether `MAPS_MIXED_PRECISION` selects mixed-precision factorization
/// for this process (read once; `1`/`on`/`true` enable, anything else —
/// including unset — keeps the full-`f64` default).
pub fn mixed_precision() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("MAPS_MIXED_PRECISION") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
            {
                false
            } else if v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true") {
                true
            } else {
                maps_obs::warn_invalid_env("MAPS_MIXED_PRECISION", v, "1/on/true or 0/off/false");
                false
            }
        }
        Err(_) => false,
    })
}

/// Hit/miss/eviction counts of one [`FactorCache`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to factorize (single-flight leaders included).
    pub misses: u64,
    /// Entries dropped from the LRU ring to respect capacity.
    pub evictions: u64,
    /// Lookups that joined another thread's in-flight factorization instead
    /// of computing their own (single-flight followers).
    pub coalesced: u64,
}

/// How one coalesced factorization request was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorOutcome {
    /// The factorization was already cached.
    Hit,
    /// This call computed the factorization (and published it to every
    /// concurrent follower).
    Leader,
    /// This call waited on a concurrent leader's factorization of the same
    /// fingerprint and shared its result.
    Follower,
}

/// One in-flight factorization: followers block on the condvar until the
/// leader publishes a result (or its abort) into the slot.
struct Flight {
    slot: Mutex<Option<Result<Arc<Factor>, LinalgError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<Arc<Factor>, LinalgError>) {
        let mut slot = self.slot.lock().expect("flight slot");
        *slot = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<Factor>, LinalgError> {
        let mut slot = self.slot.lock().expect("flight slot");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("flight wait");
        }
        slot.as_ref().expect("published flight result").clone()
    }
}

/// Removes the leader's in-flight entry and publishes an abort if the leader
/// unwinds without publishing a real result — followers must never block on
/// a leader that panicked mid-factorization.
/// A registry shard: the in-flight factorizations whose fingerprints hash
/// into this shard.
type FlightShard = Vec<(Fingerprint, Arc<Flight>)>;

struct FlightGuard<'a> {
    shard: &'a Mutex<FlightShard>,
    key: Fingerprint,
    flight: &'a Arc<Flight>,
    published: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.flight.publish(Err(LinalgError::Aborted {
                detail: "single-flight leader panicked before factorizing".into(),
            }));
        }
        let mut inflight = self.shard.lock().expect("flight shard");
        inflight.retain(|(k, _)| *k != self.key);
    }
}

struct Entry {
    key: Fingerprint,
    lu: Arc<Factor>,
    used: u64,
}

struct Inner {
    /// Most recent factorization — always retained, even at capacity 0,
    /// so forward → adjoint pairs on one design share a factor
    /// unconditionally.
    last: Option<(Fingerprint, Arc<Factor>)>,
    ring: Vec<Entry>,
    capacity: usize,
    clock: u64,
}

/// A bounded LRU cache of banded LU factorizations.
///
/// The process-wide instance is [`global`]; independent instances are
/// constructible for tests and special-purpose pipelines.
pub struct FactorCache {
    inner: Mutex<Inner>,
    /// Single-flight registries, sharded by fingerprint bits so concurrent
    /// factorizations of unrelated designs never contend on one lock.
    flights: Vec<Mutex<FlightShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl std::fmt::Debug for FactorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FactorCache")
            .field("capacity", &self.capacity())
            .field("stats", &s)
            .finish()
    }
}

impl FactorCache {
    /// Creates a cache with an LRU ring of `capacity` entries (0 disables
    /// the ring; the last-factor slot is always active).
    pub fn new(capacity: usize) -> Self {
        FactorCache {
            inner: Mutex::new(Inner {
                last: None,
                ring: Vec::new(),
                capacity,
                clock: 0,
            }),
            flights: (0..FLIGHT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Current LRU capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("factor cache lock").capacity
    }

    /// Resizes the LRU ring, evicting least-recently-used entries if the
    /// new capacity is smaller. The last-factor slot is unaffected.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.capacity = capacity;
        while inner.ring.len() > capacity {
            evict_lru(&mut inner);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("fdfd.factor_cache.evict").inc();
        }
    }

    /// Raises (or lowers) the LRU capacity for a bounded scope: the
    /// returned guard restores the prior capacity when dropped, evicting
    /// down to it. Benchmarks and sweeps that need a temporarily larger
    /// ring (e.g. one factor per spectrum frequency) use this instead of a
    /// bare [`FactorCache::set_capacity`], which would leave a process-wide
    /// capacity raise sticky after the sweep ends — every later caller
    /// would silently retain far more factor memory than `MAPS_FACTOR_CACHE`
    /// configured.
    #[must_use = "dropping the guard immediately restores the prior capacity"]
    pub fn scoped_capacity(&self, capacity: usize) -> CapacityGuard<'_> {
        let prior = self.capacity();
        self.set_capacity(capacity);
        CapacityGuard { cache: self, prior }
    }

    /// Drops every cached factorization (including the last-factor slot)
    /// without touching the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.last = None;
        inner.ring.clear();
    }

    /// Instance counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Looks up a factorization without counting a miss (used by
    /// [`FactorCache::factorize_with`]; exposed for diagnostics).
    pub fn get(&self, key: &Fingerprint) -> Option<Arc<Factor>> {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.clock += 1;
        let now = inner.clock;
        if let Some((k, lu)) = &inner.last {
            if k == key {
                let lu = Arc::clone(lu);
                // Refresh the ring entry too, if present.
                if let Some(e) = inner.ring.iter_mut().find(|e| e.key == *key) {
                    e.used = now;
                }
                return Some(lu);
            }
        }
        if let Some(e) = inner.ring.iter_mut().find(|e| e.key == *key) {
            e.used = now;
            let lu = Arc::clone(&e.lu);
            inner.last = Some((*key, Arc::clone(&lu)));
            return Some(lu);
        }
        None
    }

    /// Inserts a factorization, evicting the least-recently-used ring entry
    /// when over capacity.
    pub fn insert(&self, key: Fingerprint, lu: Arc<Factor>) {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.clock += 1;
        let now = inner.clock;
        inner.last = Some((key, Arc::clone(&lu)));
        if inner.capacity == 0 {
            return;
        }
        if let Some(e) = inner.ring.iter_mut().find(|e| e.key == key) {
            e.used = now;
            e.lu = lu;
            return;
        }
        while inner.ring.len() >= inner.capacity {
            evict_lru(&mut inner);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("fdfd.factor_cache.evict").inc();
        }
        inner.ring.push(Entry { key, lu, used: now });
    }

    /// The factorization for `key`, computing it with `assemble` +
    /// [`BandedMatrix::factorize`] on a miss. See
    /// [`FactorCache::factorize_coalesced`] for the concurrency contract.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the factorization.
    pub fn factorize_with(
        &self,
        key: Fingerprint,
        assemble: impl FnOnce() -> BandedMatrix,
    ) -> Result<Arc<Factor>, LinalgError> {
        self.factorize_coalesced(key, assemble).map(|(lu, _)| lu)
    }

    /// Single-flight factorization: concurrent misses of the same `key`
    /// elect one **leader** that assembles and factorizes; every concurrent
    /// **follower** blocks until the leader publishes and then shares the
    /// same `Arc<Factor>`. A `N`-way stampede on one fingerprint therefore
    /// costs exactly one `O(n·b²)` factorization instead of `N`.
    ///
    /// Only the leader emits the `fdfd.factorize` span, so span-recorder
    /// tests can count actual factorizations. A leader that fails (or
    /// panics) publishes the failure to its followers — the error is a
    /// deterministic function of the fingerprinted inputs, so re-running it
    /// per follower would only repeat the same failure N times.
    ///
    /// Telemetry: `fdfd.factor_cache.coalesce.{leader,follower}` counters,
    /// plus the per-instance [`CacheStats::coalesced`] follower count.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the factorization (leaders and
    /// followers alike), or [`LinalgError::Aborted`] to followers whose
    /// leader panicked.
    pub fn factorize_coalesced(
        &self,
        key: Fingerprint,
        assemble: impl FnOnce() -> BandedMatrix,
    ) -> Result<(Arc<Factor>, FactorOutcome), LinalgError> {
        if let Some(lu) = self.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("fdfd.factor_cache.hit").inc();
            return Ok((lu, FactorOutcome::Hit));
        }
        let shard = &self.flights[key.shard()];
        let flight = Arc::new(Flight::new());
        let joined = {
            let mut inflight = shard.lock().expect("flight shard");
            // Re-check under the shard lock: a leader that finished between
            // our lookup and here has already inserted into the cache.
            if let Some(lu) = self.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                maps_obs::counter("fdfd.factor_cache.hit").inc();
                return Ok((lu, FactorOutcome::Hit));
            }
            match inflight.iter().find(|(k, _)| *k == key) {
                Some((_, leader)) => Some(Arc::clone(leader)),
                None => {
                    inflight.push((key, Arc::clone(&flight)));
                    None
                }
            }
        };
        if let Some(leader) = joined {
            // Follower: wait for the leader's published result.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("fdfd.factor_cache.coalesce.follower").inc();
            return leader.wait().map(|lu| (lu, FactorOutcome::Follower));
        }
        // Leader: factorize outside every lock, publish, then deregister.
        let mut guard = FlightGuard {
            shard,
            key,
            flight: &flight,
            published: false,
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        maps_obs::counter("fdfd.factor_cache.miss").inc();
        maps_obs::counter("fdfd.factor_cache.coalesce.leader").inc();
        let result = {
            let _s = maps_obs::span("fdfd.factorize")
                .field("cells", key.cells)
                .field("precision", if key.mixed { "mixed-f32" } else { "f64" })
                .field("fingerprint", key.hex());
            let a = assemble();
            let factor = if key.mixed {
                MixedBandedLu::new(a).map(Factor::Mixed)
            } else {
                a.factorize().map(Factor::Full)
            };
            factor.map(Arc::new)
        };
        if let Ok(lu) = &result {
            self.insert(key, Arc::clone(lu));
        }
        flight.publish(result.clone());
        guard.published = true;
        drop(guard);
        result.map(|lu| (lu, FactorOutcome::Leader))
    }
}

/// Restores a [`FactorCache`]'s prior LRU capacity on drop (see
/// [`FactorCache::scoped_capacity`]).
#[derive(Debug)]
pub struct CapacityGuard<'a> {
    cache: &'a FactorCache,
    prior: usize,
}

impl CapacityGuard<'_> {
    /// The capacity the guard will restore.
    pub fn prior(&self) -> usize {
        self.prior
    }
}

impl Drop for CapacityGuard<'_> {
    fn drop(&mut self) {
        self.cache.set_capacity(self.prior);
    }
}

fn evict_lru(inner: &mut Inner) {
    if let Some(pos) = inner
        .ring
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.used)
        .map(|(i, _)| i)
    {
        inner.ring.swap_remove(pos);
    }
}

/// Parses the `MAPS_FACTOR_CACHE` knob into an LRU capacity. The `off` /
/// `false` aliases mean capacity 0; an unparseable value warns once via
/// the `MAPS_LOG` error sink and keeps the default (the shared warn-once
/// discipline of [`maps_obs::parse_env_or`]).
fn capacity_from_env() -> usize {
    match std::env::var("MAPS_FACTOR_CACHE") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() {
                DEFAULT_CAPACITY
            } else if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                0
            } else {
                v.parse().unwrap_or_else(|_| {
                    maps_obs::warn_invalid_env(
                        "MAPS_FACTOR_CACHE",
                        v,
                        "a capacity integer, or off/false",
                    );
                    DEFAULT_CAPACITY
                })
            }
        }
        Err(_) => DEFAULT_CAPACITY,
    }
}

/// The process-wide factorization cache (capacity from `MAPS_FACTOR_CACHE`
/// at first use; adjustable later via [`FactorCache::set_capacity`]).
pub fn global() -> &'static FactorCache {
    static GLOBAL: OnceLock<FactorCache> = OnceLock::new();
    GLOBAL.get_or_init(|| FactorCache::new(capacity_from_env()))
}

/// One-call convenience over the [`global`] cache: fingerprint the inputs
/// and return the shared factorization, assembling and factoring on a miss.
///
/// # Errors
///
/// Propagates [`LinalgError`] from the factorization.
pub fn factor(
    eps_r: &RealField2d,
    omega: f64,
    pml: &PmlConfig,
    assemble: impl FnOnce() -> BandedMatrix,
) -> Result<Arc<Factor>, LinalgError> {
    global().factorize_with(fingerprint(eps_r, omega, pml), assemble)
}

/// Like [`factor`], but also reports whether this call hit the cache, led
/// the factorization, or followed a concurrent leader — the signal `mapsd`
/// uses to account request-level coalescing.
///
/// # Errors
///
/// Propagates [`LinalgError`] from the factorization.
pub fn factor_coalesced(
    eps_r: &RealField2d,
    omega: f64,
    pml: &PmlConfig,
    assemble: impl FnOnce() -> BandedMatrix,
) -> Result<(Arc<Factor>, FactorOutcome), LinalgError> {
    global().factorize_coalesced(fingerprint(eps_r, omega, pml), assemble)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;
    use maps_linalg::Complex64;

    fn toy_banded(seed: f64) -> BandedMatrix {
        let mut a = BandedMatrix::zeros(4, 1, 1);
        for i in 0..4 {
            a.set(i, i, Complex64::new(3.0 + seed, 0.2));
        }
        a
    }

    fn key_for(tag: f64) -> Fingerprint {
        let grid = Grid2d::new(3, 3, 0.1);
        let eps = RealField2d::constant(grid, tag);
        fingerprint(&eps, 4.0, &PmlConfig::default())
    }

    #[test]
    fn fingerprint_distinguishes_every_input() {
        let grid = Grid2d::new(8, 6, 0.1);
        let eps = RealField2d::constant(grid, 2.0);
        let pml = PmlConfig {
            thickness: 2,
            ..Default::default()
        };
        let base = fingerprint(&eps, 4.0, &pml);
        assert_eq!(base, fingerprint(&eps, 4.0, &pml), "deterministic");
        // One-ULP permittivity change.
        let mut eps2 = eps.clone();
        eps2.set(3, 3, f64::from_bits(2.0f64.to_bits() + 1));
        assert_ne!(base, fingerprint(&eps2, 4.0, &pml));
        // Frequency change.
        assert_ne!(base, fingerprint(&eps, 4.0 + 1e-12, &pml));
        // PML change.
        let pml2 = PmlConfig {
            thickness: 3,
            ..pml
        };
        assert_ne!(base, fingerprint(&eps, 4.0, &pml2));
        // Grid spacing change (same dims and values).
        let eps3 = RealField2d::constant(Grid2d::new(8, 6, 0.05), 2.0);
        assert_ne!(base, fingerprint(&eps3, 4.0, &pml));
        // Transposed dims with identical cell count.
        let eps4 = RealField2d::constant(Grid2d::new(6, 8, 0.1), 2.0);
        assert_ne!(base, fingerprint(&eps4, 4.0, &pml));
    }

    #[test]
    fn hit_returns_the_same_factorization() {
        let cache = FactorCache::new(2);
        let key = key_for(1.0);
        let a = cache.factorize_with(key, || toy_banded(0.0)).unwrap();
        let b = cache
            .factorize_with(key, || panic!("must not refactorize on a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the factorization");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = FactorCache::new(2);
        let (k1, k2, k3) = (key_for(1.0), key_for(2.0), key_for(3.0));
        cache.factorize_with(k1, || toy_banded(0.1)).unwrap();
        cache.factorize_with(k2, || toy_banded(0.2)).unwrap();
        // Touch k1 so k2 is the LRU entry when k3 arrives.
        assert!(cache.get(&k1).is_some());
        cache.factorize_with(k3, || toy_banded(0.3)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&k1).is_some(), "recently used entry survives");
        assert!(cache.get(&k2).is_none(), "LRU entry was evicted");
        assert!(cache.get(&k3).is_some());
    }

    #[test]
    fn capacity_zero_still_retains_the_last_factor() {
        let cache = FactorCache::new(0);
        let key = key_for(4.0);
        let a = cache.factorize_with(key, || toy_banded(0.0)).unwrap();
        // The immediately following lookup (the adjoint solve of the same
        // design) hits the last-factor slot.
        let b = cache
            .factorize_with(key, || panic!("adjoint must reuse the forward factor"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A different design displaces it; the old key is gone.
        cache
            .factorize_with(key_for(5.0), || toy_banded(0.5))
            .unwrap();
        assert!(
            cache.get(&key).is_none(),
            "capacity 0 keeps only the last factor"
        );
        assert_eq!(
            cache.stats().evictions,
            0,
            "last-slot turnover is not an eviction"
        );
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let cache = FactorCache::new(3);
        for t in 0..3 {
            cache
                .factorize_with(key_for(10.0 + t as f64), || toy_banded(t as f64))
                .unwrap();
        }
        cache.set_capacity(1);
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.capacity(), 1);
    }

    #[test]
    fn clear_drops_everything() {
        let cache = FactorCache::new(2);
        let key = key_for(6.0);
        cache.factorize_with(key, || toy_banded(0.0)).unwrap();
        cache.clear();
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn scoped_capacity_restores_on_drop() {
        let cache = FactorCache::new(2);
        {
            let guard = cache.scoped_capacity(16);
            assert_eq!(cache.capacity(), 16);
            assert_eq!(guard.prior(), 2);
            for t in 0..5 {
                cache
                    .factorize_with(key_for(20.0 + t as f64), || toy_banded(t as f64))
                    .unwrap();
            }
            assert_eq!(cache.stats().evictions, 0, "raised ring holds all 5");
        }
        assert_eq!(cache.capacity(), 2, "guard restores the prior capacity");
        assert_eq!(cache.stats().evictions, 3, "restore evicts down to prior");
    }

    #[test]
    fn mixed_key_factorizes_mixed_and_never_aliases_full() {
        let cache = FactorCache::new(4);
        let full_key = key_for(30.0).with_mixed(false);
        let mixed_key = full_key.with_mixed(true);
        assert_ne!(full_key, mixed_key);
        assert!(mixed_key.is_mixed());
        let full = cache.factorize_with(full_key, || toy_banded(0.0)).unwrap();
        let mixed = cache.factorize_with(mixed_key, || toy_banded(0.0)).unwrap();
        assert!(!full.is_mixed());
        assert!(mixed.is_mixed());
        assert_eq!(full.precision(), "f64");
        assert_eq!(mixed.precision(), "mixed-f32");
        assert!(!Arc::ptr_eq(&full, &mixed), "strategies cache separately");
        assert_eq!(
            cache.stats().misses,
            2,
            "each strategy factorizes once despite identical operators"
        );
        // Both strategies solve the same system to direct-solve accuracy.
        let b = vec![Complex64::ONE; 4];
        let xf = full.solve(&b);
        let xm = mixed.solve(&b);
        for (p, q) in xf.iter().zip(&xm) {
            assert!((*p - *q).abs() < 1e-10, "{p} vs {q}");
        }
        // And a repeat lookup of either key hits its own entry.
        let again = cache
            .factorize_with(mixed_key, || panic!("hit must not refactorize"))
            .unwrap();
        assert!(Arc::ptr_eq(&mixed, &again));
    }

    #[test]
    fn outcome_reports_hit_and_leader() {
        let cache = FactorCache::new(2);
        let key = key_for(7.0);
        let (a, first) = cache.factorize_coalesced(key, || toy_banded(0.0)).unwrap();
        assert_eq!(first, FactorOutcome::Leader);
        let (b, second) = cache
            .factorize_coalesced(key, || panic!("hit must not refactorize"))
            .unwrap();
        assert_eq!(second, FactorOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().coalesced, 0);
    }

    #[test]
    fn stampede_elects_one_leader_and_shares_the_factor() {
        let cache = FactorCache::new(4);
        let key = key_for(8.0);
        let threads = 8;
        let barrier = std::sync::Barrier::new(threads);
        let factorizations = AtomicU64::new(0);
        let outcomes: Vec<(FactorOutcome, Arc<Factor>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        let (lu, outcome) = cache
                            .factorize_coalesced(key, || {
                                factorizations.fetch_add(1, Ordering::Relaxed);
                                // Widen the race window so followers really
                                // do arrive while the leader is working.
                                std::thread::sleep(std::time::Duration::from_millis(30));
                                toy_banded(0.0)
                            })
                            .unwrap();
                        (outcome, lu)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            factorizations.load(Ordering::Relaxed),
            1,
            "exactly one thread may factorize"
        );
        let leaders = outcomes
            .iter()
            .filter(|(o, _)| *o == FactorOutcome::Leader)
            .count();
        assert_eq!(leaders, 1);
        let reference = &outcomes[0].1;
        for (_, lu) in &outcomes {
            assert!(Arc::ptr_eq(reference, lu), "all threads share one factor");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(
            stats.coalesced + stats.hits,
            threads as u64 - 1,
            "everyone but the leader followed or hit"
        );
    }

    #[test]
    fn leader_failure_propagates_to_followers() {
        let cache = FactorCache::new(2);
        let key = key_for(9.0);
        // A singular matrix: the leader's factorization fails and every
        // follower must see that failure instead of hanging.
        let singular = || BandedMatrix::zeros(4, 1, 1);
        let barrier = std::sync::Barrier::new(3);
        let errors: Vec<LinalgError> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cache
                            .factorize_coalesced(key, || {
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                singular()
                            })
                            .unwrap_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(errors.len(), 3);
        for e in &errors {
            assert!(
                matches!(e, LinalgError::Singular { .. }),
                "followers see the leader's error: {e:?}"
            );
        }
        assert!(cache.get(&key).is_none(), "failures are not cached");
    }

    #[test]
    fn leader_panic_releases_followers_with_aborted() {
        let cache = Arc::new(FactorCache::new(2));
        let key = key_for(10.0);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let follower = {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait(); // leader is inside its assemble closure
                cache.factorize_coalesced(key, || toy_banded(0.0))
            })
        };
        let leader = {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = cache.factorize_coalesced(key, || {
                    gate.wait();
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("injected leader panic");
                });
            })
        };
        assert!(leader.join().is_err(), "leader thread must have panicked");
        match follower.join().unwrap() {
            // The follower either joined the doomed flight (Aborted) or
            // arrived after deregistration and factorized on its own.
            Err(LinalgError::Aborted { .. }) => {}
            Ok((_, FactorOutcome::Leader)) => {}
            other => panic!("unexpected follower outcome: {other:?}"),
        }
    }
}
