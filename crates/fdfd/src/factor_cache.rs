//! Factorization reuse: one banded LU per (design, frequency, PML).
//!
//! The banded LU factorization is `O(n·nx²)` — the dominant cost of every
//! direct solve — while a substitution sweep is only `O(n·nx)`. Forward,
//! adjoint, repeated monitor, and S-parameter solves against the *same*
//! discretized operator therefore want to share one factorization. This
//! module provides that sharing:
//!
//! - a cheap 128-bit [`Fingerprint`] of the operator inputs (permittivity
//!   bits, `omega`, grid dims, spacing, PML config) identifies "the same
//!   operator" without retaining the inputs;
//! - a process-wide [`FactorCache`] maps fingerprints to `Arc<BandedLu>`
//!   with bounded capacity and LRU eviction;
//! - independent of the LRU ring, the cache always retains the **most
//!   recent** factorization, so an adjoint solve immediately following the
//!   forward solve of the same design reuses its factor even when the cache
//!   is disabled (`MAPS_FACTOR_CACHE=0`).
//!
//! Reuse is bit-identical by construction: a hit returns the *same*
//! factorization a cold call would recompute (the factorization is a
//! deterministic function of the fingerprinted inputs), so `solve` /
//! `solve_transposed` produce exactly the same bits either way.
//!
//! Telemetry: `fdfd.factor_cache.{hit,miss,evict}` counters in the
//! [`maps_obs`] global registry, plus per-instance [`CacheStats`].
//!
//! The capacity knob is the `MAPS_FACTOR_CACHE` environment variable:
//! unset/empty keeps the default (4 entries), `0`/`off` disables the LRU
//! ring (the last-factor slot stays active), any other integer sets the
//! capacity. A cached factor for an `nx × ny` grid holds
//! `(3·nx + 1)·nx·ny` complex doubles (~25 MB at the default 80×80 device
//! grid), so capacities stay small.

use crate::pml::PmlConfig;
use maps_core::RealField2d;
use maps_linalg::{BandedLu, BandedMatrix, LinalgError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default LRU capacity when `MAPS_FACTOR_CACHE` is unset.
pub const DEFAULT_CAPACITY: usize = 4;

/// A cheap identity of one assembled Helmholtz operator.
///
/// Two FNV-1a passes with independent offset bases over the raw bit
/// patterns of every input that reaches the operator assembly: permittivity
/// cells, `omega`, grid dims and spacing, and the PML configuration. With
/// 128 independent hash bits, an accidental collision between two *distinct*
/// operators in a cache of single-digit capacity is vanishingly unlikely
/// (birthday bound ≪ 1e-30), and any intentional inputs that differ in even
/// one bit fingerprint differently — which is exactly the invalidation rule
/// bit-identical reuse needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    h: [u64; 2],
    cells: usize,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
// Second pass starts from an unrelated offset so the two 64-bit digests are
// independent functions of the input stream.
const FNV_OFFSET_B: u64 = 0x6C62_272E_07BB_0142;

#[derive(Clone, Copy)]
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    fn new() -> Self {
        Fnv2 {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Hash byte-wise: FNV-1a mixes per octet. Pass B sees each byte
        // XOR-masked so the two digests are independent functions of the
        // input stream, not a shared value from two offsets.
        for shift in (0..64).step_by(8) {
            let byte = (v >> shift) & 0xFF;
            self.a = (self.a ^ byte).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ (byte ^ 0xA5)).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

/// Computes the [`Fingerprint`] of the operator assembled from these inputs.
pub fn fingerprint(eps_r: &RealField2d, omega: f64, pml: &PmlConfig) -> Fingerprint {
    let grid = eps_r.grid();
    let mut h = Fnv2::new();
    h.write_u64(grid.nx as u64);
    h.write_u64(grid.ny as u64);
    h.write_f64(grid.dl);
    h.write_f64(omega);
    h.write_u64(pml.thickness as u64);
    h.write_f64(pml.order);
    h.write_f64(pml.target_reflection);
    for v in eps_r.as_slice() {
        h.write_f64(*v);
    }
    Fingerprint {
        h: [h.a, h.b],
        cells: grid.len(),
    }
}

/// Hit/miss/eviction counts of one [`FactorCache`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to factorize.
    pub misses: u64,
    /// Entries dropped from the LRU ring to respect capacity.
    pub evictions: u64,
}

struct Entry {
    key: Fingerprint,
    lu: Arc<BandedLu>,
    used: u64,
}

struct Inner {
    /// Most recent factorization — always retained, even at capacity 0,
    /// so forward → adjoint pairs on one design share a factor
    /// unconditionally.
    last: Option<(Fingerprint, Arc<BandedLu>)>,
    ring: Vec<Entry>,
    capacity: usize,
    clock: u64,
}

/// A bounded LRU cache of banded LU factorizations.
///
/// The process-wide instance is [`global`]; independent instances are
/// constructible for tests and special-purpose pipelines.
pub struct FactorCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for FactorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FactorCache")
            .field("capacity", &self.capacity())
            .field("stats", &s)
            .finish()
    }
}

impl FactorCache {
    /// Creates a cache with an LRU ring of `capacity` entries (0 disables
    /// the ring; the last-factor slot is always active).
    pub fn new(capacity: usize) -> Self {
        FactorCache {
            inner: Mutex::new(Inner {
                last: None,
                ring: Vec::new(),
                capacity,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Current LRU capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("factor cache lock").capacity
    }

    /// Resizes the LRU ring, evicting least-recently-used entries if the
    /// new capacity is smaller. The last-factor slot is unaffected.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.capacity = capacity;
        while inner.ring.len() > capacity {
            evict_lru(&mut inner);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("fdfd.factor_cache.evict").inc();
        }
    }

    /// Drops every cached factorization (including the last-factor slot)
    /// without touching the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.last = None;
        inner.ring.clear();
    }

    /// Instance counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Looks up a factorization without counting a miss (used by
    /// [`FactorCache::factorize_with`]; exposed for diagnostics).
    pub fn get(&self, key: &Fingerprint) -> Option<Arc<BandedLu>> {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.clock += 1;
        let now = inner.clock;
        if let Some((k, lu)) = &inner.last {
            if k == key {
                let lu = Arc::clone(lu);
                // Refresh the ring entry too, if present.
                if let Some(e) = inner.ring.iter_mut().find(|e| e.key == *key) {
                    e.used = now;
                }
                return Some(lu);
            }
        }
        if let Some(e) = inner.ring.iter_mut().find(|e| e.key == *key) {
            e.used = now;
            let lu = Arc::clone(&e.lu);
            inner.last = Some((*key, Arc::clone(&lu)));
            return Some(lu);
        }
        None
    }

    /// Inserts a factorization, evicting the least-recently-used ring entry
    /// when over capacity.
    pub fn insert(&self, key: Fingerprint, lu: Arc<BandedLu>) {
        let mut inner = self.inner.lock().expect("factor cache lock");
        inner.clock += 1;
        let now = inner.clock;
        inner.last = Some((key, Arc::clone(&lu)));
        if inner.capacity == 0 {
            return;
        }
        if let Some(e) = inner.ring.iter_mut().find(|e| e.key == key) {
            e.used = now;
            e.lu = lu;
            return;
        }
        while inner.ring.len() >= inner.capacity {
            evict_lru(&mut inner);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("fdfd.factor_cache.evict").inc();
        }
        inner.ring.push(Entry { key, lu, used: now });
    }

    /// The factorization for `key`, computing it with `assemble` +
    /// [`BandedMatrix::factorize`] on a miss. The factorization runs
    /// *outside* the cache lock (concurrent misses of the same key both
    /// factorize and insert bit-identical results — wasteful but correct).
    ///
    /// Only a miss emits the `fdfd.factorize` span, so span-recorder tests
    /// can count actual factorizations.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the factorization.
    pub fn factorize_with(
        &self,
        key: Fingerprint,
        assemble: impl FnOnce() -> BandedMatrix,
    ) -> Result<Arc<BandedLu>, LinalgError> {
        if let Some(lu) = self.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("fdfd.factor_cache.hit").inc();
            return Ok(lu);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        maps_obs::counter("fdfd.factor_cache.miss").inc();
        let lu = {
            let _s = maps_obs::span("fdfd.factorize").field("cells", key.cells);
            Arc::new(assemble().factorize()?)
        };
        self.insert(key, Arc::clone(&lu));
        Ok(lu)
    }
}

fn evict_lru(inner: &mut Inner) {
    if let Some(pos) = inner
        .ring
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.used)
        .map(|(i, _)| i)
    {
        inner.ring.swap_remove(pos);
    }
}

/// Parses the `MAPS_FACTOR_CACHE` knob into an LRU capacity. The `off` /
/// `false` aliases mean capacity 0; an unparseable value warns once via
/// the `MAPS_LOG` error sink and keeps the default (the shared warn-once
/// discipline of [`maps_obs::parse_env_or`]).
fn capacity_from_env() -> usize {
    match std::env::var("MAPS_FACTOR_CACHE") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() {
                DEFAULT_CAPACITY
            } else if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                0
            } else {
                v.parse().unwrap_or_else(|_| {
                    maps_obs::warn_invalid_env(
                        "MAPS_FACTOR_CACHE",
                        v,
                        "a capacity integer, or off/false",
                    );
                    DEFAULT_CAPACITY
                })
            }
        }
        Err(_) => DEFAULT_CAPACITY,
    }
}

/// The process-wide factorization cache (capacity from `MAPS_FACTOR_CACHE`
/// at first use; adjustable later via [`FactorCache::set_capacity`]).
pub fn global() -> &'static FactorCache {
    static GLOBAL: OnceLock<FactorCache> = OnceLock::new();
    GLOBAL.get_or_init(|| FactorCache::new(capacity_from_env()))
}

/// One-call convenience over the [`global`] cache: fingerprint the inputs
/// and return the shared factorization, assembling and factoring on a miss.
///
/// # Errors
///
/// Propagates [`LinalgError`] from the factorization.
pub fn factor(
    eps_r: &RealField2d,
    omega: f64,
    pml: &PmlConfig,
    assemble: impl FnOnce() -> BandedMatrix,
) -> Result<Arc<BandedLu>, LinalgError> {
    global().factorize_with(fingerprint(eps_r, omega, pml), assemble)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;
    use maps_linalg::Complex64;

    fn toy_banded(seed: f64) -> BandedMatrix {
        let mut a = BandedMatrix::zeros(4, 1, 1);
        for i in 0..4 {
            a.set(i, i, Complex64::new(3.0 + seed, 0.2));
        }
        a
    }

    fn key_for(tag: f64) -> Fingerprint {
        let grid = Grid2d::new(3, 3, 0.1);
        let eps = RealField2d::constant(grid, tag);
        fingerprint(&eps, 4.0, &PmlConfig::default())
    }

    #[test]
    fn fingerprint_distinguishes_every_input() {
        let grid = Grid2d::new(8, 6, 0.1);
        let eps = RealField2d::constant(grid, 2.0);
        let pml = PmlConfig {
            thickness: 2,
            ..Default::default()
        };
        let base = fingerprint(&eps, 4.0, &pml);
        assert_eq!(base, fingerprint(&eps, 4.0, &pml), "deterministic");
        // One-ULP permittivity change.
        let mut eps2 = eps.clone();
        eps2.set(3, 3, f64::from_bits(2.0f64.to_bits() + 1));
        assert_ne!(base, fingerprint(&eps2, 4.0, &pml));
        // Frequency change.
        assert_ne!(base, fingerprint(&eps, 4.0 + 1e-12, &pml));
        // PML change.
        let pml2 = PmlConfig {
            thickness: 3,
            ..pml
        };
        assert_ne!(base, fingerprint(&eps, 4.0, &pml2));
        // Grid spacing change (same dims and values).
        let eps3 = RealField2d::constant(Grid2d::new(8, 6, 0.05), 2.0);
        assert_ne!(base, fingerprint(&eps3, 4.0, &pml));
        // Transposed dims with identical cell count.
        let eps4 = RealField2d::constant(Grid2d::new(6, 8, 0.1), 2.0);
        assert_ne!(base, fingerprint(&eps4, 4.0, &pml));
    }

    #[test]
    fn hit_returns_the_same_factorization() {
        let cache = FactorCache::new(2);
        let key = key_for(1.0);
        let a = cache.factorize_with(key, || toy_banded(0.0)).unwrap();
        let b = cache
            .factorize_with(key, || panic!("must not refactorize on a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the factorization");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = FactorCache::new(2);
        let (k1, k2, k3) = (key_for(1.0), key_for(2.0), key_for(3.0));
        cache.factorize_with(k1, || toy_banded(0.1)).unwrap();
        cache.factorize_with(k2, || toy_banded(0.2)).unwrap();
        // Touch k1 so k2 is the LRU entry when k3 arrives.
        assert!(cache.get(&k1).is_some());
        cache.factorize_with(k3, || toy_banded(0.3)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&k1).is_some(), "recently used entry survives");
        assert!(cache.get(&k2).is_none(), "LRU entry was evicted");
        assert!(cache.get(&k3).is_some());
    }

    #[test]
    fn capacity_zero_still_retains_the_last_factor() {
        let cache = FactorCache::new(0);
        let key = key_for(4.0);
        let a = cache.factorize_with(key, || toy_banded(0.0)).unwrap();
        // The immediately following lookup (the adjoint solve of the same
        // design) hits the last-factor slot.
        let b = cache
            .factorize_with(key, || panic!("adjoint must reuse the forward factor"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A different design displaces it; the old key is gone.
        cache
            .factorize_with(key_for(5.0), || toy_banded(0.5))
            .unwrap();
        assert!(
            cache.get(&key).is_none(),
            "capacity 0 keeps only the last factor"
        );
        assert_eq!(
            cache.stats().evictions,
            0,
            "last-slot turnover is not an eviction"
        );
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let cache = FactorCache::new(3);
        for t in 0..3 {
            cache
                .factorize_with(key_for(10.0 + t as f64), || toy_banded(t as f64))
                .unwrap();
        }
        cache.set_capacity(1);
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.capacity(), 1);
    }

    #[test]
    fn clear_drops_everything() {
        let cache = FactorCache::new(2);
        let key = key_for(6.0);
        cache.factorize_with(key, || toy_banded(0.0)).unwrap();
        cache.clear();
        assert!(cache.get(&key).is_none());
    }
}
