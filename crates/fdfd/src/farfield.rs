//! Near-to-far-field projection.
//!
//! The paper's objective suite includes "controlling far-field intensity
//! distributions" (§III-C4). For the 2-D `Ez` polarization, the angular
//! spectrum of the field on a vertical cut line gives the far-field
//! radiation pattern: a plane-wave decomposition
//! `Ez(x₀, y) = ∫ a(k_y)·e^{i·k_y·y} dk_y` where each `k_y` component
//! radiates towards angle `θ = asin(k_y/k)`. Each angular amplitude is a
//! *linear functional* of the field, so far-field objectives compose with
//! the adjoint machinery exactly like modal objectives.

use crate::monitor::LinearFunctional;
use maps_core::{ComplexField2d, Grid2d};
use maps_linalg::Complex64;

/// Far-field projector for a vertical cut line.
#[derive(Debug, Clone)]
pub struct FarFieldProjector {
    cells: Vec<(usize, usize)>,
    grid: Grid2d,
    /// Background wavenumber `k = ω·n` used to map `k_y` to angles.
    k: f64,
}

impl FarFieldProjector {
    /// Creates a projector on the vertical line at `x` spanning
    /// `y ∈ [y0, y1]`, in a background of refractive index `n_background`.
    ///
    /// # Panics
    ///
    /// Panics if the span covers fewer than 4 cells.
    pub fn vertical(grid: Grid2d, x: f64, y0: f64, y1: f64, omega: f64, n_background: f64) -> Self {
        let (ix, iy0) = grid.cell_at(x, y0);
        let (_, iy1) = grid.cell_at(x, y1);
        let cells: Vec<(usize, usize)> = (iy0..=iy1).map(|iy| (ix, iy)).collect();
        assert!(cells.len() >= 4, "far-field line too short");
        FarFieldProjector {
            cells,
            grid,
            k: omega * n_background,
        }
    }

    /// Number of sample points on the cut line.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the projector has no sample points (impossible
    /// by construction; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The linear functional extracting the plane-wave amplitude radiating
    /// at angle `theta` (radians, 0 = +x axis) from the cut line:
    /// `a(θ) = Σ_y Ez(x₀, y)·e^{−i·k·sinθ·y}·dl`.
    ///
    /// # Panics
    ///
    /// Panics if `|theta| ≥ π/2` (not propagating through a vertical line).
    pub fn angular_functional(&self, theta: f64) -> LinearFunctional {
        assert!(
            theta.abs() < std::f64::consts::FRAC_PI_2,
            "angle must be within ±90° of the +x axis"
        );
        let ky = self.k * theta.sin();
        let dl = self.grid.dl;
        LinearFunctional {
            weights: self
                .cells
                .iter()
                .map(|&(ix, iy)| {
                    let (_, y) = self.grid.coord(ix, iy);
                    (self.grid.idx(ix, iy), Complex64::cis(-ky * y) * dl)
                })
                .collect(),
        }
    }

    /// Samples the far-field intensity pattern `|a(θ)|²` at `n_angles`
    /// angles uniformly spanning `(−θ_max, θ_max)`.
    pub fn intensity_pattern(
        &self,
        ez: &ComplexField2d,
        theta_max: f64,
        n_angles: usize,
    ) -> Vec<(f64, f64)> {
        (0..n_angles)
            .map(|i| {
                let theta = -theta_max + 2.0 * theta_max * i as f64 / (n_angles - 1).max(1) as f64;
                let a = self.angular_functional(theta).eval(ez);
                (theta, a.norm_sqr())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::RealField2d;

    /// A synthetic plane wave travelling at angle θ peaks at that angle of
    /// the far-field pattern.
    #[test]
    fn plane_wave_peaks_at_its_angle() {
        let grid = Grid2d::new(64, 96, 0.05);
        let omega = maps_core::omega_for_wavelength(1.55);
        let k = omega; // vacuum
        let theta0: f64 = 0.3;
        let (kx, ky) = (k * theta0.cos(), k * theta0.sin());
        let mut ez = ComplexField2d::zeros(grid);
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                let (x, y) = grid.coord(ix, iy);
                ez.set(ix, iy, Complex64::cis(kx * x + ky * y));
            }
        }
        let proj = FarFieldProjector::vertical(grid, 2.0, 0.3, grid.height() - 0.3, omega, 1.0);
        let pattern = proj.intensity_pattern(&ez, 0.9, 61);
        let (peak_theta, _) = pattern
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        assert!(
            (peak_theta - theta0).abs() < 0.06,
            "peak at {peak_theta}, expected {theta0}"
        );
    }

    /// Far-field functionals plug into the adjoint objective machinery:
    /// maximizing |a(θ)|² yields a finite, nonzero gradient.
    #[test]
    fn farfield_objective_has_adjoint_gradient() {
        use crate::adjoint::{solve_with_adjoint, PowerObjective};
        use crate::simulation::FdfdSolver;
        let grid = Grid2d::new(48, 48, 0.08);
        let eps = RealField2d::constant(grid, 1.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(14, 24, Complex64::ONE);
        let proj = FarFieldProjector::vertical(grid, 2.9, 0.9, grid.height() - 0.9, omega, 1.0);
        let objective = PowerObjective::new().with_term(proj.angular_functional(0.2), 1.0);
        let solver = FdfdSolver::with_pml(crate::pml::PmlConfig::auto(grid.dl));
        let sol = solve_with_adjoint(&solver, &eps, &j, omega, &objective).unwrap();
        assert!(sol.objective > 0.0);
        assert!(sol.gradient.as_slice().iter().any(|g| *g != 0.0));
        assert!(sol.gradient.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "±90°")]
    fn rejects_backward_angles() {
        let grid = Grid2d::new(32, 32, 0.1);
        let proj = FarFieldProjector::vertical(grid, 1.0, 0.5, 2.5, 4.0, 1.0);
        proj.angular_functional(2.0);
    }
}
