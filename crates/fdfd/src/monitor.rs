//! Field monitors: Poynting flux and eigenmode-overlap S-parameters.
//!
//! A [`ModeMonitor`] decomposes the field on a port plane into forward and
//! backward modal amplitudes. Crucially, each amplitude is a *linear*
//! functional of the `Ez` vector, exposed as an explicit weight list so the
//! adjoint engine can form exact adjoint sources from it.

use crate::modes::{port_cross_section, solve_slab_modes, ModeError, SlabMode};
use maps_core::{Axis, ComplexField2d, Direction, Grid2d, Port, RealField2d};
use maps_linalg::Complex64;

/// A linear functional `a = Σ w_k · e_k` of the flattened `Ez` field.
#[derive(Debug, Clone, Default)]
pub struct LinearFunctional {
    /// Sparse `(cell index, weight)` pairs.
    pub weights: Vec<(usize, Complex64)>,
}

impl LinearFunctional {
    /// Evaluates the functional on a field.
    pub fn eval(&self, ez: &ComplexField2d) -> Complex64 {
        let data = ez.as_slice();
        self.weights.iter().map(|&(k, w)| w * data[k]).sum()
    }

    /// Scales all weights by a complex factor, returning the result.
    pub fn scaled(&self, factor: Complex64) -> LinearFunctional {
        LinearFunctional {
            weights: self.weights.iter().map(|&(k, w)| (k, w * factor)).collect(),
        }
    }
}

/// Monitors the modal content of a port plane.
#[derive(Debug, Clone)]
pub struct ModeMonitor {
    port: Port,
    mode: SlabMode,
    cells: Vec<(usize, usize)>,
    grid: Grid2d,
}

impl ModeMonitor {
    /// Builds a monitor on the port plane, solving the port eigenmode on
    /// the supplied permittivity map.
    ///
    /// # Errors
    ///
    /// Returns [`ModeError::NotGuided`] when the port cross-section guides
    /// fewer modes than requested.
    pub fn new(eps_r: &RealField2d, port: &Port, omega: f64) -> Result<Self, ModeError> {
        let along = match port.axis {
            Axis::X => port.center.0,
            Axis::Y => port.center.1,
        };
        let (cells, eps_line) = port_cross_section(port, eps_r, along);
        let modes = solve_slab_modes(&eps_line, eps_r.grid().dl, omega);
        if port.mode_index >= modes.len() {
            return Err(ModeError::NotGuided {
                requested: port.mode_index,
                available: modes.len(),
            });
        }
        Ok(ModeMonitor {
            port: *port,
            mode: modes[port.mode_index].clone(),
            cells,
            grid: eps_r.grid(),
        })
    }

    /// The solved port mode.
    pub fn mode(&self) -> &SlabMode {
        &self.mode
    }

    /// The port being monitored.
    pub fn port(&self) -> &Port {
        &self.port
    }

    /// Weight list of the overlap `u = ⟨Ez⟩ = A + B` (sum of the
    /// positive-axis amplitude `A` and negative-axis amplitude `B`).
    fn u_weights(&self) -> LinearFunctional {
        let c = self.mode.beta / (2.0 * self.mode.omega) * self.grid.dl;
        LinearFunctional {
            weights: self
                .cells
                .iter()
                .zip(&self.mode.profile)
                .map(|(&(ix, iy), &phi)| (self.grid.idx(ix, iy), Complex64::from_re(c * phi)))
                .collect(),
        }
    }

    /// Weight list of `v = A − B`, built from the transverse magnetic field
    /// via central differences along the propagation axis.
    fn v_weights(&self) -> LinearFunctional {
        // v = −(i/(4ω))·Σ φ_k (e[next_k] − e[prev_k]) for both axes.
        let c = Complex64::new(0.0, -1.0 / (4.0 * self.mode.omega));
        let mut weights = Vec::with_capacity(self.cells.len() * 2);
        for (&(ix, iy), &phi) in self.cells.iter().zip(&self.mode.profile) {
            let (next, prev) = match self.port.axis {
                Axis::X => (
                    if ix + 1 < self.grid.nx {
                        Some((ix + 1, iy))
                    } else {
                        None
                    },
                    ix.checked_sub(1).map(|x| (x, iy)),
                ),
                Axis::Y => (
                    if iy + 1 < self.grid.ny {
                        Some((ix, iy + 1))
                    } else {
                        None
                    },
                    iy.checked_sub(1).map(|y| (ix, y)),
                ),
            };
            if let Some((nx_, ny_)) = next {
                weights.push((self.grid.idx(nx_, ny_), c * phi));
            }
            if let Some((px, py)) = prev {
                weights.push((self.grid.idx(px, py), -c * phi));
            }
        }
        LinearFunctional { weights }
    }

    /// Linear functional whose value is the modal amplitude propagating
    /// towards the positive axis direction (`A = (u+v)/2`).
    pub fn positive_amplitude_functional(&self) -> LinearFunctional {
        combine(&self.u_weights(), &self.v_weights(), 0.5, 0.5)
    }

    /// Linear functional for the negative-axis amplitude (`B = (u−v)/2`).
    pub fn negative_amplitude_functional(&self) -> LinearFunctional {
        combine(&self.u_weights(), &self.v_weights(), 0.5, -0.5)
    }

    /// Linear functional for the amplitude *leaving* through this port
    /// (along `port.direction`).
    pub fn outgoing_functional(&self) -> LinearFunctional {
        match self.port.direction {
            Direction::Positive => self.positive_amplitude_functional(),
            Direction::Negative => self.negative_amplitude_functional(),
        }
    }

    /// Linear functional for the amplitude *entering* through this port.
    pub fn incoming_functional(&self) -> LinearFunctional {
        match self.port.direction {
            Direction::Positive => self.negative_amplitude_functional(),
            Direction::Negative => self.positive_amplitude_functional(),
        }
    }

    /// Decomposes a field into `(positive-axis, negative-axis)` modal
    /// amplitudes. With the unit-power mode normalization, `|a|²` is the
    /// modal power.
    pub fn amplitudes(&self, ez: &ComplexField2d) -> (Complex64, Complex64) {
        let u = self.u_weights().eval(ez);
        let v = self.v_weights().eval(ez);
        ((u + v) * 0.5, (u - v) * 0.5)
    }

    /// Power carried out of the domain through this port (`|outgoing|²`).
    pub fn outgoing_power(&self, ez: &ComplexField2d) -> f64 {
        self.outgoing_functional().eval(ez).norm_sqr()
    }
}

fn combine(a: &LinearFunctional, b: &LinearFunctional, ca: f64, cb: f64) -> LinearFunctional {
    let mut weights = Vec::with_capacity(a.weights.len() + b.weights.len());
    weights.extend(a.weights.iter().map(|&(k, w)| (k, w * ca)));
    weights.extend(b.weights.iter().map(|&(k, w)| (k, w * cb)));
    LinearFunctional { weights }
}

/// Poynting power flux through a transverse line.
///
/// For `Ez` polarization the flux along +x through a vertical line is
/// `P = Σ_y −½·Re(Ez·Hy*)·dl` with `Hy = i·∂x Ez / ω`; the +y flux uses
/// `+½·Re(Ez·Hx*)` with `Hx = −i·∂y Ez / ω`.
#[derive(Debug, Clone)]
pub struct FluxMonitor {
    cells: Vec<(usize, usize)>,
    axis: Axis,
}

impl FluxMonitor {
    /// A vertical line at `x` spanning `y ∈ [y0, y1]`, measuring +x flux.
    pub fn vertical(grid: Grid2d, x: f64, y0: f64, y1: f64) -> Self {
        let (ix, _) = grid.cell_at(x, y0);
        let (_, iy0) = grid.cell_at(x, y0);
        let (_, iy1) = grid.cell_at(x, y1);
        FluxMonitor {
            cells: (iy0..=iy1).map(|iy| (ix, iy)).collect(),
            axis: Axis::X,
        }
    }

    /// A horizontal line at `y` spanning `x ∈ [x0, x1]`, measuring +y flux.
    pub fn horizontal(grid: Grid2d, y: f64, x0: f64, x1: f64) -> Self {
        let (_, iy) = grid.cell_at(x0, y);
        let (ix0, _) = grid.cell_at(x0, y);
        let (ix1, _) = grid.cell_at(x1, y);
        FluxMonitor {
            cells: (ix0..=ix1).map(|ix| (ix, iy)).collect(),
            axis: Axis::Y,
        }
    }

    /// Evaluates the signed power flux through the line (positive along the
    /// positive axis).
    pub fn flux(&self, ez: &ComplexField2d, omega: f64) -> f64 {
        let grid = ez.grid();
        let dl = grid.dl;
        let mut total = 0.0;
        for &(ix, iy) in &self.cells {
            match self.axis {
                Axis::X => {
                    let e = ez.get(ix, iy);
                    let dx = central_diff_x(ez, ix, iy);
                    // Hy = i·∂xEz/ω ; Sx = −½Re(Ez·Hy*)
                    let hy = Complex64::I * dx / (omega * dl * 2.0);
                    total += -0.5 * (e * hy.conj()).re * dl;
                }
                Axis::Y => {
                    let e = ez.get(ix, iy);
                    let dy = central_diff_y(ez, ix, iy);
                    // Hx = −i·∂yEz/ω ; Sy = +½Re(Ez·Hx*)
                    let hx = -Complex64::I * dy / (omega * dl * 2.0);
                    total += 0.5 * (e * hx.conj()).re * dl;
                }
            }
        }
        total
    }
}

fn central_diff_x(f: &ComplexField2d, ix: usize, iy: usize) -> Complex64 {
    let grid = f.grid();
    let e = if ix + 1 < grid.nx {
        f.get(ix + 1, iy)
    } else {
        Complex64::ZERO
    };
    let w = if ix > 0 {
        f.get(ix - 1, iy)
    } else {
        Complex64::ZERO
    };
    e - w
}

fn central_diff_y(f: &ComplexField2d, ix: usize, iy: usize) -> Complex64 {
    let grid = f.grid();
    let n = if iy + 1 < grid.ny {
        f.get(ix, iy + 1)
    } else {
        Complex64::ZERO
    };
    let s = if iy > 0 {
        f.get(ix, iy - 1)
    } else {
        Complex64::ZERO
    };
    n - s
}

/// Derives the magnetic field components from an `Ez` phasor:
/// `Hx = −i·∂y Ez/ω`, `Hy = i·∂x Ez/ω` (central differences).
pub fn derive_h_fields(ez: &ComplexField2d, omega: f64) -> (ComplexField2d, ComplexField2d) {
    let grid = ez.grid();
    let mut hx = ComplexField2d::zeros(grid);
    let mut hy = ComplexField2d::zeros(grid);
    let inv = 1.0 / (2.0 * grid.dl * omega);
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let dx = central_diff_x(ez, ix, iy);
            let dy = central_diff_y(ez, ix, iy);
            hx.set(ix, iy, -Complex64::I * dy * inv);
            hy.set(ix, iy, Complex64::I * dx * inv);
        }
    }
    (hx, hy)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic forward-propagating mode field Ez = φ(y)e^{iβx}
    /// and checks the monitor recovers (A, B) ≈ (1, 0).
    #[test]
    fn monitor_separates_directions() {
        let grid = Grid2d::new(64, 48, 0.05);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut eps = RealField2d::constant(grid, 2.07);
        let yc = grid.height() / 2.0;
        maps_core::paint(
            &mut eps,
            &maps_core::Shape::Rect(maps_core::Rect::new(
                0.0,
                yc - 0.25,
                grid.width(),
                yc + 0.25,
            )),
            12.11,
        );
        let port = Port::new((1.6, yc), 0.5, Axis::X, Direction::Positive);
        let monitor = ModeMonitor::new(&eps, &port, omega).unwrap();
        let mode = monitor.mode().clone();
        // Synthesize the exact discrete mode on the whole grid.
        let (cells, _) = crate::modes::port_cross_section(&port, &eps, 1.6);
        let mut ez = ComplexField2d::zeros(grid);
        for ix in 0..grid.nx {
            let phase = Complex64::cis(mode.beta * (ix as f64) * grid.dl);
            for (k, &(_, iy)) in cells.iter().enumerate() {
                ez.set(ix, iy, phase * mode.profile[k]);
            }
        }
        let (a, b) = monitor.amplitudes(&ez);
        assert!((a.abs() - 1.0).abs() < 0.05, "A = {}", a.abs());
        assert!(b.abs() < 0.05, "B = {}", b.abs());
        // Reverse the propagation direction: amplitudes swap.
        let mut ez_rev = ComplexField2d::zeros(grid);
        for ix in 0..grid.nx {
            let phase = Complex64::cis(-mode.beta * (ix as f64) * grid.dl);
            for (k, &(_, iy)) in cells.iter().enumerate() {
                ez_rev.set(ix, iy, phase * mode.profile[k]);
            }
        }
        let (a2, b2) = monitor.amplitudes(&ez_rev);
        assert!(a2.abs() < 0.05, "A(rev) = {}", a2.abs());
        assert!((b2.abs() - 1.0).abs() < 0.05, "B(rev) = {}", b2.abs());
    }

    #[test]
    fn functional_eval_matches_amplitudes() {
        let grid = Grid2d::new(40, 30, 0.05);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut eps = RealField2d::constant(grid, 2.07);
        let yc = grid.height() / 2.0;
        maps_core::paint(
            &mut eps,
            &maps_core::Shape::Rect(maps_core::Rect::new(
                0.0,
                yc - 0.25,
                grid.width(),
                yc + 0.25,
            )),
            12.11,
        );
        let port = Port::new((1.0, yc), 0.5, Axis::X, Direction::Positive);
        let monitor = ModeMonitor::new(&eps, &port, omega).unwrap();
        // Arbitrary field.
        let mut ez = ComplexField2d::zeros(grid);
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                ez.set(
                    ix,
                    iy,
                    Complex64::new((ix as f64 * 0.3).sin(), (iy as f64 * 0.2).cos()),
                );
            }
        }
        let (a, b) = monitor.amplitudes(&ez);
        let af = monitor.positive_amplitude_functional().eval(&ez);
        let bf = monitor.negative_amplitude_functional().eval(&ez);
        assert!((a - af).abs() < 1e-12);
        assert!((b - bf).abs() < 1e-12);
    }

    #[test]
    fn flux_of_plane_wave_is_positive() {
        let grid = Grid2d::new(64, 16, 0.05);
        let omega = maps_core::omega_for_wavelength(1.55);
        // Uniform plane wave e^{iωx} in vacuum (k = ω since c = 1).
        let mut ez = ComplexField2d::zeros(grid);
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                ez.set(ix, iy, Complex64::cis(omega * ix as f64 * grid.dl));
            }
        }
        let m = FluxMonitor::vertical(grid, grid.width() / 2.0, 0.1, grid.height() - 0.1);
        assert!(m.flux(&ez, omega) > 0.0);
        // Counter-propagating wave has negative flux.
        let mut ez_rev = ComplexField2d::zeros(grid);
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                ez_rev.set(ix, iy, Complex64::cis(-omega * ix as f64 * grid.dl));
            }
        }
        assert!(m.flux(&ez_rev, omega) < 0.0);
    }

    #[test]
    fn derive_h_of_plane_wave() {
        let grid = Grid2d::new(64, 8, 0.05);
        let omega = 4.0;
        let mut ez = ComplexField2d::zeros(grid);
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                ez.set(ix, iy, Complex64::cis(omega * ix as f64 * grid.dl));
            }
        }
        let (hx, hy) = derive_h_fields(&ez, omega);
        // For Ez = e^{iωx}: Hy = i(iω)Ez/ω = −Ez (continuum limit).
        let k = (32, 4);
        let expect = -ez.get(k.0, k.1);
        let got = hy.get(k.0, k.1);
        assert!((got - expect).abs() < 0.01, "{got} vs {expect}");
        assert!(hx.get(k.0, k.1).abs() < 1e-12);
    }
}
