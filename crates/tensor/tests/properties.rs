//! Property-based tests of tensor ops and the typestate autodiff tapes.

use maps_tensor::{tape_nodes_recorded, Dtype, OwnedTape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0..3.0f64, len).prop_map(move |v| Tensor::from_vec(&[len], v))
}

/// Central finite differences against the taped gradient, generic over
/// dtype: the same graph is built for `f64` and `f32` inputs and both
/// must agree with the numeric derivative at dtype-appropriate tolerance.
fn fd_check_generic<E: Dtype>(
    build: impl Fn(Tensor<E, OwnedTape<E>>) -> Tensor<E, OwnedTape<E>>,
    input: &Tensor<E>,
    tol: f64,
) {
    let grads = build(input.trace()).backward();
    let gx = grads.wrt(input).expect("input gradient missing").clone();
    let h = E::from_f64(if E::NAME == "f32" { 1e-2 } else { 1e-6 });
    for probe in 0..input.len() {
        let mut xp = input.clone();
        xp.as_mut_slice()[probe] += h;
        let fp = build(xp.trace()).item().to_f64();
        let mut xm = input.clone();
        xm.as_mut_slice()[probe] -= h;
        let fm = build(xm.trace()).item().to_f64();
        let fd = (fp - fm) / (2.0 * h.to_f64());
        let ad = gx.as_slice()[probe].to_f64();
        assert!(
            (fd - ad).abs() <= tol * (1.0 + fd.abs().max(ad.abs())),
            "{} probe {probe}: fd {fd:.6e} vs ad {ad:.6e}",
            E::NAME
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// d(sum(a ⊙ b))/da = b for any tensors.
    #[test]
    fn mul_gradient_is_other_operand(
        a in tensor_strategy(12),
        b in tensor_strategy(12),
    ) {
        let loss = a.trace().mul(b.clone()).sum();
        let grads = loss.backward();
        let ga = grads.wrt(&a).unwrap();
        for (g, bb) in ga.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((g - bb).abs() < 1e-12);
        }
    }

    /// The gradient of a linear graph is independent of the input value.
    #[test]
    fn linear_graph_gradient_constant(
        a in tensor_strategy(8),
        k in -5.0..5.0f64,
    ) {
        let grad_of = |t: &Tensor| -> Vec<f64> {
            let loss = t.trace().scale(k).add_scalar(1.0).sum();
            loss.backward().wrt(t).unwrap().as_slice().to_vec()
        };
        let g1 = grad_of(&a);
        let shifted = a.map(|v| v + 1.0);
        let g2 = grad_of(&shifted);
        for (p, q) in g1.iter().zip(&g2) {
            prop_assert!((p - q).abs() < 1e-12);
            prop_assert!((p - k).abs() < 1e-12);
        }
    }

    /// NMSE is zero iff prediction equals target, and equals 1 for the zero
    /// predictor.
    #[test]
    fn nmse_fixed_points(t in tensor_strategy(10)) {
        prop_assume!(t.norm_sqr() > 1e-6);
        let loss = t.trace().nmse(t.clone());
        prop_assert!(loss.item().abs() < 1e-12);
        let loss2 = Tensor::zeros(t.shape()).trace().nmse(t.clone());
        prop_assert!((loss2.item() - 1.0).abs() < 1e-9);
    }

    /// relu + neg-relu reconstructs the input: relu(x) − relu(−x) = x.
    #[test]
    fn relu_decomposition(t in tensor_strategy(9)) {
        let x = t.trace();
        let neg_part = x.with_empty_tape().neg().relu();
        let reconstructed = x.relu().sub(neg_part);
        for (a, b) in reconstructed.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Gradient accumulation: using a variable twice doubles its gradient.
    #[test]
    fn fanout_gradient_accumulates(t in tensor_strategy(6)) {
        let x = t.trace();
        let loss = x.with_empty_tape().add(x).sum();
        let g = loss.backward();
        for v in g.wrt(&t).unwrap().as_slice() {
            prop_assert!((v - 2.0).abs() < 1e-12);
        }
    }

    /// Taped gradients match central finite differences through a
    /// nonlinear graph, for both dtypes from the same generic code path.
    #[test]
    fn gradients_match_finite_difference_any_dtype(
        t in prop::collection::vec(-2.0..2.0f64, 6),
        k in -2.0..2.0f64,
    ) {
        fn graph<E: Dtype>(k: f64) -> impl Fn(Tensor<E, OwnedTape<E>>) -> Tensor<E, OwnedTape<E>> {
            move |x| {
                let z = x.scale(E::from_f64(k)).tanh().add_scalar(E::from_f64(0.1));
                z.with_empty_tape().mul(z).sum()
            }
        }
        let x64 = Tensor::<f64>::from_vec(&[6], t.clone());
        fd_check_generic::<f64>(graph(k), &x64, 1e-5);
        let x32 = x64.cast::<f32>();
        fd_check_generic::<f32>(graph(k), &x32, 2e-2);
    }

    /// Typestate guarantee: inference on `NoneTape` tensors records zero
    /// tape nodes, in either dtype, no matter the graph.
    #[test]
    fn none_tape_inference_records_nothing(t in tensor_strategy(16)) {
        let before = tape_nodes_recorded();
        let y = t.clone().relu().scale(0.5).add(t.clone()).gelu().sum();
        let y32 = t.cast::<f32>().relu().scale(0.5f32).tanh().mean();
        prop_assert!(y.item().is_finite());
        prop_assert!(y32.item().is_finite());
        prop_assert_eq!(tape_nodes_recorded(), before);
    }
}

/// Deterministic regression pin (runs even when proptest shrinks are
/// disabled in CI): a full inference-style pipeline — conv, activation,
/// pooling, spectral conv — allocates zero tape nodes on `NoneTape`.
#[test]
fn inference_pipeline_allocates_zero_tape_nodes() {
    let x = Tensor::from_vec(
        &[1, 2, 8, 8],
        (0..128).map(|k| (k as f64 * 0.17).sin()).collect(),
    );
    let w = Tensor::from_vec(
        &[2, 2, 3, 3],
        (0..36).map(|k| (k as f64 * 0.09).cos()).collect(),
    );
    let wr = Tensor::full(&[2, 2, 4, 4], 0.25);
    let wi = Tensor::zeros(&[2, 2, 4, 4]);
    let before = tape_nodes_recorded();
    let y = x
        .conv2d(w, Default::default())
        .gelu()
        .avg_pool2()
        .upsample2()
        .spectral_conv(wr, wi, 2, 2)
        .sum();
    assert!(y.item().is_finite());
    assert_eq!(
        tape_nodes_recorded(),
        before,
        "NoneTape inference recorded tape nodes"
    );
}

/// The same pipeline traced records one node per differentiable op —
/// the counter moves exactly when it should.
#[test]
fn traced_pipeline_counts_one_node_per_op() {
    let x = Tensor::from_vec(&[4], vec![0.3, -0.7, 1.1, 0.0]);
    let before = tape_nodes_recorded();
    let loss = x.trace().gelu().scale(2.0).sum();
    assert_eq!(tape_nodes_recorded() - before, 3);
    let grads = loss.backward();
    assert!(grads.wrt(&x).is_some());
}
