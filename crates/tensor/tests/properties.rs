//! Property-based tests of tensor ops and the autodiff tape.

use maps_tensor::{Tape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0..3.0f64, len).prop_map(move |v| Tensor::from_vec(&[len], v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// d(sum(a ⊙ b))/da = b for any tensors.
    #[test]
    fn mul_gradient_is_other_operand(
        a in tensor_strategy(12),
        b in tensor_strategy(12),
    ) {
        let mut tape = Tape::new();
        let av = tape.input(a);
        let bv = tape.input(b.clone());
        let prod = tape.mul(av, bv);
        let loss = tape.sum(prod);
        let grads = tape.backward(loss);
        let ga = grads.wrt(av).unwrap();
        for (g, bb) in ga.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((g - bb).abs() < 1e-12);
        }
    }

    /// The gradient of a linear graph is independent of the input value.
    #[test]
    fn linear_graph_gradient_constant(
        a in tensor_strategy(8),
        k in -5.0..5.0f64,
    ) {
        let grad_of = |t: &Tensor| -> Vec<f64> {
            let mut tape = Tape::new();
            let x = tape.input(t.clone());
            let y = tape.scale(x, k);
            let z = tape.add_scalar(y, 1.0);
            let loss = tape.sum(z);
            tape.backward(loss).wrt(x).unwrap().as_slice().to_vec()
        };
        let g1 = grad_of(&a);
        let g2 = grad_of(&a.map(|v| v + 1.0));
        for (p, q) in g1.iter().zip(&g2) {
            prop_assert!((p - q).abs() < 1e-12);
            prop_assert!((p - k).abs() < 1e-12);
        }
    }

    /// NMSE is zero iff prediction equals target, and equals 1 for the zero
    /// predictor.
    #[test]
    fn nmse_fixed_points(t in tensor_strategy(10)) {
        prop_assume!(t.norm_sqr() > 1e-6);
        let mut tape = Tape::new();
        let pred = tape.input(t.clone());
        let target = tape.input(t.clone());
        let loss = tape.nmse(pred, target);
        prop_assert!(tape.value(loss).item().abs() < 1e-12);

        let mut tape2 = Tape::new();
        let zero = tape2.input(Tensor::zeros(t.shape()));
        let target2 = tape2.input(t.clone());
        let loss2 = tape2.nmse(zero, target2);
        prop_assert!((tape2.value(loss2).item() - 1.0).abs() < 1e-9);
    }

    /// relu + neg-relu reconstructs the input: relu(x) − relu(−x) = x.
    #[test]
    fn relu_decomposition(t in tensor_strategy(9)) {
        let mut tape = Tape::new();
        let x = tape.input(t.clone());
        let neg = tape.scale(x, -1.0);
        let pos_part = tape.relu(x);
        let neg_part = tape.relu(neg);
        let reconstructed = tape.sub(pos_part, neg_part);
        for (a, b) in tape.value(reconstructed).as_slice().iter().zip(t.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Gradient accumulation: using a variable twice doubles its gradient.
    #[test]
    fn fanout_gradient_accumulates(t in tensor_strategy(6)) {
        let mut tape = Tape::new();
        let x = tape.input(t.clone());
        let doubled = tape.add(x, x);
        let loss = tape.sum(doubled);
        let g = tape.backward(loss);
        for v in g.wrt(x).unwrap().as_slice() {
            prop_assert!((v - 2.0).abs() < 1e-12);
        }
    }
}
