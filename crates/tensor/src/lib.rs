//! # maps-tensor
//!
//! Minimal n-dimensional tensors with tape-based reverse-mode autodiff —
//! the training substrate of MAPS-Train. Supports the ops needed by the
//! FNO / F-FNO / UNet / NeurOLight reference models: dense and
//! convolutional layers, activations, pooling/upsampling, channel
//! plumbing, spectral (Fourier) convolutions with analytic backward, and
//! data/physics loss heads.
//!
//! ```
//! use maps_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::from_vec(&[2], vec![1.0, 2.0]));
//! let y = tape.mul(x, x);
//! let loss = tape.sum(y);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.wrt(x).unwrap().as_slice(), &[2.0, 4.0]);
//! ```

pub mod spectral;
pub mod tape;
pub mod tensor;

pub use tape::{Gradients, ParamId, Params, Tape, Var};
pub use tensor::{Conv2dSpec, Tensor};
