//! # maps-tensor
//!
//! Minimal n-dimensional tensors with *typestate* reverse-mode autodiff —
//! the training and inference substrate of MAPS-Train. Supports the ops
//! needed by the FNO / F-FNO / UNet / NeurOLight reference models: dense
//! and convolutional layers, activations, pooling/upsampling, channel
//! plumbing, spectral (Fourier) convolutions with analytic backward, and
//! data/physics loss heads.
//!
//! Tape presence lives in the tensor's type: `Tensor<E, NoneTape>` (the
//! default) computes values only, while [`Tensor::trace`] yields a
//! `Tensor<E, OwnedTape<E>>` that records one backward closure per op.
//! Storage is generic over [`Dtype`] (`f64` default for training, `f32`
//! for bandwidth-bound inference).
//!
//! Training — trace, run ops, differentiate:
//!
//! ```
//! use maps_tensor::Tensor;
//!
//! let x = Tensor::from_vec(&[2], vec![1.0, 2.0]);
//! let traced = x.trace();
//! let loss = traced.with_empty_tape().mul(traced).sum();
//! let grads = loss.backward();
//! assert_eq!(grads.wrt(&x).unwrap().as_slice(), &[2.0, 4.0]); // d(x²)/dx
//! ```
//!
//! Inference — same ops, no tape, optionally in `f32`:
//!
//! ```
//! use maps_tensor::{tape_nodes_recorded, Tensor};
//!
//! let x = Tensor::from_vec(&[3], vec![-1.0, 0.5, 2.0]);
//! let before = tape_nodes_recorded();
//! let y64 = x.clone().relu().scale(2.0);        // f64, NoneTape
//! let y32 = x.cast::<f32>().relu().scale(2.0);  // f32, NoneTape
//! assert_eq!(tape_nodes_recorded(), before);    // nothing was recorded
//! assert_eq!(y64.as_slice(), &[0.0, 1.0, 4.0]);
//! assert_eq!(y32.as_slice(), &[0.0f32, 1.0, 4.0]);
//! ```
//!
//! Parameters live in a [`Params`] store; gradients are keyed by tensor
//! identity, so the store hands the optimizer exactly the leaves that
//! participated:
//!
//! ```
//! use maps_tensor::{Params, Tensor};
//!
//! let mut params = Params::<f64>::new();
//! let w = params.alloc(Tensor::from_vec(&[2], vec![3.0, -2.0]));
//! let loss = params.get(w).trace().square().sum();
//! let grads = loss.backward();
//! let g = grads.wrt(params.get(w)).unwrap();
//! assert_eq!(g.as_slice(), &[6.0, -4.0]); // 2w
//! // f32 twin for inference: same ParamIds, cast values.
//! let p32 = params.cast::<f32>();
//! assert_eq!(p32.get(w).as_slice(), &[3.0f32, -2.0]);
//! ```

pub mod dtype;
pub mod ops;
pub mod spectral;
pub mod tape;
pub mod tensor;

pub use dtype::Dtype;
pub use tape::{tape_nodes_recorded, Gradients, Merge, NoneTape, OwnedTape, ParamId, Params, Tape};
pub use tensor::{Conv2dSpec, Tensor};
