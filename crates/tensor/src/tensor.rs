//! Dense n-dimensional tensors, generic over element type and tape.
//!
//! The layout is row-major ("C order"); convolutional tensors use the
//! `[N, C, H, W]` convention. [`Tensor<E, T>`] carries its autodiff tape
//! in the type: the default `T = NoneTape` records nothing and costs
//! nothing, while `T = OwnedTape<E>` accumulates backward closures that
//! [`Tensor::backward`] replays in reverse. Values share storage through
//! an `Arc`, so cloning a tensor (or capturing it in a backward closure)
//! is a reference-count bump, not a copy.

use crate::dtype::Dtype;
use crate::tape::{NoneTape, OwnedTape};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique tensor id. Gradients are keyed by these
/// ids, so two tensors with the same uid are "the same variable" to the
/// autodiff engine (clones and re-tapings keep the uid; fresh values get
/// fresh ids).
pub(crate) fn new_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

/// A dense row-major tensor of `E` carrying tape `T`.
///
/// `Tensor` (all defaults) is a plain `f64` value with no tape — exactly
/// what data loading and inference use. `tensor.trace()` starts gradient
/// recording; see [`crate::tape`] for the typestate rules.
pub struct Tensor<E: Dtype = f64, T = NoneTape> {
    pub(crate) shape: Vec<usize>,
    pub(crate) data: Arc<Vec<E>>,
    pub(crate) uid: u64,
    pub(crate) tape: T,
}

impl<E: Dtype, T: Clone> Clone for Tensor<E, T> {
    /// Clones share storage *and identity*: the clone has the same uid,
    /// so gradients flow to the original through any op the clone enters.
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::clone(&self.data),
            uid: self.uid,
            tape: self.tape.clone(),
        }
    }
}

impl<E: Dtype, T> fmt::Debug for Tensor<E, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor<{}>{:?} ({} elements)",
            E::NAME,
            self.shape,
            self.data.len()
        )
    }
}

impl<E: Dtype, T, U> PartialEq<Tensor<E, U>> for Tensor<E, T> {
    fn eq(&self, other: &Tensor<E, U>) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl<E: Dtype> Tensor<E, NoneTape> {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor::from_parts(shape.to_vec(), vec![E::ZERO; len])
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: E) -> Self {
        let len = shape.iter().product();
        Tensor::from_parts(shape.to_vec(), vec![value; len])
    }

    /// Creates a tensor from a shape and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if the element count does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<E>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "tensor shape/data mismatch"
        );
        Tensor::from_parts(shape.to_vec(), data)
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: E) -> Self {
        Tensor::from_parts(vec![], vec![value])
    }

    pub(crate) fn from_parts(shape: Vec<usize>, data: Vec<E>) -> Self {
        Tensor {
            shape,
            data: Arc::new(data),
            uid: new_uid(),
            tape: NoneTape,
        }
    }

    /// Mutable borrow of the row-major data (copy-on-write when shared).
    ///
    /// The uid is preserved: in-place edits update "the same variable",
    /// which is what optimizers stepping parameters rely on.
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning the data (cloning only if shared).
    pub fn into_vec(self) -> Vec<E> {
        Arc::try_unwrap(self.data).unwrap_or_else(|arc| (*arc).clone())
    }

    /// In-place accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn accumulate(&mut self, other: &Tensor<E>) {
        assert_eq!(self.shape, other.shape, "accumulate shape mismatch");
        let dst = Arc::make_mut(&mut self.data);
        for (a, b) in dst.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Converts every element to another dtype. The result is a fresh
    /// variable (new uid) — casting is not differentiable.
    pub fn cast<F: Dtype>(&self) -> Tensor<F> {
        Tensor::from_parts(
            self.shape.clone(),
            self.data.iter().map(|&v| F::from_f64(v.to_f64())).collect(),
        )
    }

    /// Starts gradient recording: the traced tensor carries a fresh
    /// [`OwnedTape`] and keeps this tensor's identity, so after
    /// `backward()` the gradient is available via
    /// [`crate::tape::Gradients::wrt`] on `self`.
    pub fn trace(&self) -> Tensor<E, OwnedTape<E>> {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::clone(&self.data),
            uid: self.uid,
            tape: OwnedTape::default(),
        }
    }
}

impl<E: Dtype, T> Tensor<E, T> {
    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the row-major data.
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> E {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a single-element tensor"
        );
        self.data[0]
    }

    /// Sum of all elements.
    pub fn sum_value(&self) -> E {
        self.data.iter().copied().sum()
    }

    /// Mean of all elements.
    pub fn mean_value(&self) -> E {
        self.sum_value() / E::from_usize(self.data.len())
    }

    /// Squared L2 norm.
    pub fn norm_sqr(&self) -> E {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Returns a reshaped value copy with the same number of elements
    /// (tape-free: reshaping is data plumbing, not a differentiable op).
    ///
    /// # Panics
    ///
    /// Panics if the element counts disagree.
    pub fn reshape(&self, shape: &[usize]) -> Tensor<E> {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "tensor shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data: Arc::clone(&self.data),
            uid: new_uid(),
            tape: NoneTape,
        }
    }

    /// Elementwise unary map, producing a fresh tape-free value.
    pub fn map(&self, f: impl Fn(E) -> E) -> Tensor<E> {
        Tensor::from_parts(
            self.shape.clone(),
            self.data.iter().map(|&a| f(a)).collect(),
        )
    }

    /// Elementwise binary map against a same-shape tensor (tape-free).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map<U>(&self, other: &Tensor<E, U>, f: impl Fn(E, E) -> E) -> Tensor<E> {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor::from_parts(
            self.shape.clone(),
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// A tape-free view of this tensor with the *same identity* (uid) —
    /// the building block for using a value twice in one graph (residual
    /// connections, skip paths) and for `Gradients::wrt` lookups after a
    /// trace.
    pub fn no_tape(&self) -> Tensor<E> {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::clone(&self.data),
            uid: self.uid,
            tape: NoneTape,
        }
    }

    /// Splits the tensor into its tape-free value and its tape.
    pub fn split_tape(self) -> (Tensor<E>, T) {
        let Tensor {
            shape,
            data,
            uid,
            tape,
        } = self;
        (
            Tensor {
                shape,
                data,
                uid,
                tape: NoneTape,
            },
            tape,
        )
    }

    /// Re-attaches a tape (the inverse of [`Tensor::split_tape`]).
    pub fn put_tape<U>(self, tape: U) -> Tensor<E, U> {
        Tensor {
            shape: self.shape,
            data: self.data,
            uid: self.uid,
            tape,
        }
    }

    /// A copy with the same identity but a fresh (empty) tape of the same
    /// type — dfdx's branching idiom. `x.with_empty_tape()` lets `x` feed
    /// two sub-graphs whose tapes merge again at a later binary op, with
    /// gradients from both paths accumulating on `x`.
    pub fn with_empty_tape(&self) -> Tensor<E, T>
    where
        T: Default,
    {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::clone(&self.data),
            uid: self.uid,
            tape: T::default(),
        }
    }
}

impl<E: Dtype, T> fmt::Display for Tensor<E, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor<{}>{:?} ({} elements)",
            E::NAME,
            self.shape,
            self.data.len()
        )
    }
}

/// 2-D matrix multiply: `[m, k] × [k, n] → [m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank-2 or inner dimensions disagree.
pub fn matmul<E: Dtype>(a: &Tensor<E>, b: &Tensor<E>) -> Tensor<E> {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch");
    let mut out = vec![E::ZERO; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == E::ZERO {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += av * *bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// 2-D matrix transpose of a rank-2 tensor.
pub fn transpose2<E: Dtype>(t: &Tensor<E>) -> Tensor<E> {
    let (m, n) = (t.shape()[0], t.shape()[1]);
    let mut out = Tensor::zeros(&[n, m]);
    let od = out.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = t.as_slice()[i * n + j];
        }
    }
    out
}

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Zero padding applied symmetrically to H and W.
    pub padding: usize,
    /// Stride along both spatial dimensions.
    pub stride: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            padding: 1,
            stride: 1,
        }
    }
}

impl Conv2dSpec {
    /// Output spatial size for an input extent `n` and kernel extent `k`.
    pub fn out_extent(&self, n: usize, k: usize) -> usize {
        (n + 2 * self.padding - k) / self.stride + 1
    }
}

/// Direct 2-D convolution (cross-correlation): input `[N, Cin, H, W]`,
/// weight `[Cout, Cin, Kh, Kw]` → `[N, Cout, Ho, Wo]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d<E: Dtype>(x: &Tensor<E>, w: &Tensor<E>, spec: Conv2dSpec) -> Tensor<E> {
    let (n, cin, h, wd) = unpack4(x.shape(), "conv2d input");
    let (cout, cin2, kh, kw) = unpack4(w.shape(), "conv2d weight");
    assert_eq!(cin, cin2, "conv2d channel mismatch");
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(wd, kw);
    let mut out = Tensor::zeros(&[n, cout, ho, wo]);
    let xd = x.as_slice();
    let wdat = w.as_slice();
    let od = out.as_mut_slice();
    let pad = spec.padding as isize;
    for in_ in 0..n {
        for co in 0..cout {
            for ci in 0..cin {
                let xoff = (in_ * cin + ci) * h * wd;
                let woff = (co * cin + ci) * kh * kw;
                for oy in 0..ho {
                    let base_iy = (oy * spec.stride) as isize - pad;
                    for ky in 0..kh {
                        let iy = base_iy + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = xoff + iy as usize * wd;
                        let wrow = woff + ky * kw;
                        let orow = ((in_ * cout + co) * ho + oy) * wo;
                        for ox in 0..wo {
                            let base_ix = (ox * spec.stride) as isize - pad;
                            let mut acc = E::ZERO;
                            for kx in 0..kw {
                                let ix = base_ix + kx as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                acc += xd[xrow + ix as usize] * wdat[wrow + kx];
                            }
                            od[orow + ox] += acc;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Gradient of [`conv2d`] with respect to the input.
pub fn conv2d_backward_input<E: Dtype>(
    grad_out: &Tensor<E>,
    w: &Tensor<E>,
    input_shape: &[usize],
    spec: Conv2dSpec,
) -> Tensor<E> {
    let (n, cin, h, wd) = unpack4(input_shape, "conv2d input");
    let (cout, _cin, kh, kw) = unpack4(w.shape(), "conv2d weight");
    let (gn, gcout, ho, wo) = unpack4(grad_out.shape(), "conv2d grad");
    assert_eq!((gn, gcout), (n, cout), "conv2d grad shape mismatch");
    let mut gx = Tensor::zeros(input_shape);
    let gxd = gx.as_mut_slice();
    let god = grad_out.as_slice();
    let wdat = w.as_slice();
    let pad = spec.padding as isize;
    for in_ in 0..n {
        for co in 0..cout {
            for ci in 0..cin {
                let xoff = (in_ * cin + ci) * h * wd;
                let woff = (co * cin + ci) * kh * kw;
                for oy in 0..ho {
                    let base_iy = (oy * spec.stride) as isize - pad;
                    let orow = ((in_ * cout + co) * ho + oy) * wo;
                    for ky in 0..kh {
                        let iy = base_iy + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = xoff + iy as usize * wd;
                        let wrow = woff + ky * kw;
                        for ox in 0..wo {
                            let g = god[orow + ox];
                            if g == E::ZERO {
                                continue;
                            }
                            let base_ix = (ox * spec.stride) as isize - pad;
                            for kx in 0..kw {
                                let ix = base_ix + kx as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                gxd[xrow + ix as usize] += g * wdat[wrow + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    gx
}

/// Gradient of [`conv2d`] with respect to the weight.
pub fn conv2d_backward_weight<E: Dtype>(
    grad_out: &Tensor<E>,
    x: &Tensor<E>,
    weight_shape: &[usize],
    spec: Conv2dSpec,
) -> Tensor<E> {
    let (n, cin, h, wd) = unpack4(x.shape(), "conv2d input");
    let (cout, _cin, kh, kw) = unpack4(weight_shape, "conv2d weight");
    let (_, _, ho, wo) = unpack4(grad_out.shape(), "conv2d grad");
    let mut gw = Tensor::zeros(weight_shape);
    let gwd = gw.as_mut_slice();
    let god = grad_out.as_slice();
    let xd = x.as_slice();
    let pad = spec.padding as isize;
    for in_ in 0..n {
        for co in 0..cout {
            for ci in 0..cin {
                let xoff = (in_ * cin + ci) * h * wd;
                let woff = (co * cin + ci) * kh * kw;
                for oy in 0..ho {
                    let base_iy = (oy * spec.stride) as isize - pad;
                    let orow = ((in_ * cout + co) * ho + oy) * wo;
                    for ky in 0..kh {
                        let iy = base_iy + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = xoff + iy as usize * wd;
                        let wrow = woff + ky * kw;
                        for ox in 0..wo {
                            let g = god[orow + ox];
                            if g == E::ZERO {
                                continue;
                            }
                            let base_ix = (ox * spec.stride) as isize - pad;
                            for kx in 0..kw {
                                let ix = base_ix + kx as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                gwd[wrow + kx] += g * xd[xrow + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
    gw
}

pub(crate) fn unpack4(shape: &[usize], what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(shape.len(), 4, "{what} must be rank 4, got {shape:?}");
    (shape[0], shape[1], shape[2], shape[3])
}

/// 2×2 average pooling on `[N, C, H, W]` (H and W must be even).
pub fn avg_pool2<E: Dtype>(x: &Tensor<E>) -> Tensor<E> {
    let (n, c, h, w) = unpack4(x.shape(), "avg_pool2 input");
    assert!(h % 2 == 0 && w % 2 == 0, "avg_pool2 requires even extents");
    let (ho, wo) = (h / 2, w / 2);
    let quarter = E::from_f64(0.25);
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let xd = x.as_slice();
    let od = out.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let i0 = xoff + (2 * oy) * w + 2 * ox;
                let s = xd[i0] + xd[i0 + 1] + xd[i0 + w] + xd[i0 + w + 1];
                od[ooff + oy * wo + ox] = s * quarter;
            }
        }
    }
    out
}

/// Gradient of [`avg_pool2`].
pub fn avg_pool2_backward<E: Dtype>(grad_out: &Tensor<E>, input_shape: &[usize]) -> Tensor<E> {
    let (n, c, h, w) = unpack4(input_shape, "avg_pool2 input");
    let (ho, wo) = (h / 2, w / 2);
    let quarter = E::from_f64(0.25);
    let mut gx = Tensor::zeros(input_shape);
    let gd = grad_out.as_slice();
    let gxd = gx.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let g = gd[ooff + oy * wo + ox] * quarter;
                let i0 = xoff + (2 * oy) * w + 2 * ox;
                gxd[i0] += g;
                gxd[i0 + 1] += g;
                gxd[i0 + w] += g;
                gxd[i0 + w + 1] += g;
            }
        }
    }
    gx
}

/// Nearest-neighbour 2× upsampling on `[N, C, H, W]`.
pub fn upsample2<E: Dtype>(x: &Tensor<E>) -> Tensor<E> {
    let (n, c, h, w) = unpack4(x.shape(), "upsample2 input");
    let (ho, wo) = (h * 2, w * 2);
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let xd = x.as_slice();
    let od = out.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                od[ooff + oy * wo + ox] = xd[xoff + (oy / 2) * w + ox / 2];
            }
        }
    }
    out
}

/// Gradient of [`upsample2`].
pub fn upsample2_backward<E: Dtype>(grad_out: &Tensor<E>, input_shape: &[usize]) -> Tensor<E> {
    let (n, c, h, w) = unpack4(input_shape, "upsample2 input");
    let (ho, wo) = (h * 2, w * 2);
    let mut gx = Tensor::zeros(input_shape);
    let gd = grad_out.as_slice();
    let gxd = gx.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                gxd[xoff + (oy / 2) * w + ox / 2] += gd[ooff + oy * wo + ox];
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(matmul(&a, &b), b);
    }

    #[test]
    fn matmul_f32_matches_f64() {
        let a = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 1.5, 0.25, -0.75]);
        let b = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, -0.5, 0.5, 3.0, -1.0]);
        let y64 = matmul(&a, &b);
        let y32 = matmul(&a.cast::<f32>(), &b.cast::<f32>());
        for (v64, v32) in y64.as_slice().iter().zip(y32.as_slice()) {
            assert!((v64 - v32.to_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1×1 kernel of value 1 is the identity map.
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                padding: 0,
                stride: 1,
            },
        );
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv2d_3x3_sum_kernel() {
        // All-ones 3×3 kernel with same padding computes neighbourhood sums.
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f64).collect());
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                padding: 1,
                stride: 1,
            },
        );
        // Centre output = sum of all 9 = 45.
        assert_eq!(y.as_slice()[4], 45.0);
        // Corner output = 1+2+4+5 = 12.
        assert_eq!(y.as_slice()[0], 12.0);
    }

    #[test]
    fn conv2d_stride_two_shape() {
        let x = Tensor::<f64>::zeros(&[2, 3, 8, 8]);
        let w = Tensor::<f64>::zeros(&[4, 3, 3, 3]);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                padding: 1,
                stride: 2,
            },
        );
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
    }

    /// Finite-difference check of the convolution gradients.
    #[test]
    fn conv2d_gradients_match_finite_difference() {
        let spec = Conv2dSpec {
            padding: 1,
            stride: 1,
        };
        let xs = [1usize, 2, 5, 4];
        let ws = [3usize, 2, 3, 3];
        let mut x = Tensor::<f64>::zeros(&xs);
        let mut w = Tensor::<f64>::zeros(&ws);
        for (k, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((k * 37 % 11) as f64 - 5.0) * 0.1;
        }
        for (k, v) in w.as_mut_slice().iter_mut().enumerate() {
            *v = ((k * 53 % 13) as f64 - 6.0) * 0.07;
        }
        // Loss = sum of outputs, so grad_out = ones.
        let y = conv2d(&x, &w, spec);
        let go = Tensor::full(y.shape(), 1.0);
        let gx = conv2d_backward_input(&go, &w, x.shape(), spec);
        let gw = conv2d_backward_weight(&go, &x, w.shape(), spec);
        let h = 1e-6;
        for probe in [0usize, 7, 19] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += h;
            let fp = conv2d(&xp, &w, spec).sum_value();
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= h;
            let fm = conv2d(&xm, &w, spec).sum_value();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gx.as_slice()[probe]).abs() < 1e-6,
                "input grad at {probe}"
            );
        }
        for probe in [0usize, 10, 26] {
            let mut wp = w.clone();
            wp.as_mut_slice()[probe] += h;
            let fp = conv2d(&x, &wp, spec).sum_value();
            let mut wm = w.clone();
            wm.as_mut_slice()[probe] -= h;
            let fm = conv2d(&x, &wm, spec).sum_value();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gw.as_slice()[probe]).abs() < 1e-6,
                "weight grad at {probe}"
            );
        }
    }

    #[test]
    fn pool_and_upsample_roundtrip_shapes() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let p = avg_pool2(&x);
        assert_eq!(p.shape(), &[1, 1, 1, 1]);
        assert_eq!(p.item(), 2.5);
        let u = upsample2(&p);
        assert_eq!(u.shape(), &[1, 1, 2, 2]);
        assert!(u.as_slice().iter().all(|v| *v == 2.5));
    }

    #[test]
    fn pool_backward_distributes_evenly() {
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]);
        let gx = avg_pool2_backward(&g, &[1, 1, 2, 2]);
        assert!(gx.as_slice().iter().all(|v| *v == 1.0));
    }

    #[test]
    fn upsample_backward_sums_children() {
        let g = Tensor::full(&[1, 1, 2, 2], 1.0);
        let gx = upsample2_backward(&g, &[1, 1, 1, 1]);
        assert_eq!(gx.item(), 4.0);
    }

    #[test]
    fn accumulate_adds() {
        let mut a = Tensor::full(&[3], 1.0);
        a.accumulate(&Tensor::full(&[3], 2.0));
        assert_eq!(a.as_slice(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn clone_shares_identity_and_storage() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::sync::Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(a.uid, b.uid);
        // Copy-on-write: mutating the clone leaves the original intact.
        let mut b = b;
        b.as_mut_slice()[0] = 9.0;
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        assert_eq!(b.as_slice(), &[9.0, 2.0]);
    }

    #[test]
    fn cast_roundtrip() {
        let a = Tensor::from_vec(&[3], vec![1.5, -2.25, 0.125]);
        let b = a.cast::<f32>().cast::<f64>();
        // Dyadic values survive the f32 roundtrip exactly.
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
