//! Dense n-dimensional tensors of `f64`.
//!
//! The layout is row-major ("C order"); convolutional tensors use the
//! `[N, C, H, W]` convention. These are the raw values the autodiff tape in
//! [`crate::tape`] differentiates through.

use std::fmt;

/// A dense row-major tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f64) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a tensor from a shape and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if the element count does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "tensor shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f64) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a single-element tensor"
        );
        self.data[0]
    }

    /// Returns a reshaped view copy with the same number of elements.
    ///
    /// # Panics
    ///
    /// Panics if the element counts disagree.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Elementwise binary map against a same-shape tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| f(*a, *b))
                .collect(),
        }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|a| f(*a)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Squared L2 norm.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// In-place accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn accumulate(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "accumulate shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.data.len())
    }
}

/// 2-D matrix multiply: `[m, k] × [k, n] → [m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank-2 or inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch");
    let mut out = vec![0.0; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Zero padding applied symmetrically to H and W.
    pub padding: usize,
    /// Stride along both spatial dimensions.
    pub stride: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            padding: 1,
            stride: 1,
        }
    }
}

impl Conv2dSpec {
    /// Output spatial size for an input extent `n` and kernel extent `k`.
    pub fn out_extent(&self, n: usize, k: usize) -> usize {
        (n + 2 * self.padding - k) / self.stride + 1
    }
}

/// Direct 2-D convolution (cross-correlation): input `[N, Cin, H, W]`,
/// weight `[Cout, Cin, Kh, Kw]` → `[N, Cout, Ho, Wo]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d(x: &Tensor, w: &Tensor, spec: Conv2dSpec) -> Tensor {
    let (n, cin, h, wd) = unpack4(x.shape(), "conv2d input");
    let (cout, cin2, kh, kw) = unpack4(w.shape(), "conv2d weight");
    assert_eq!(cin, cin2, "conv2d channel mismatch");
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(wd, kw);
    let mut out = Tensor::zeros(&[n, cout, ho, wo]);
    let xd = x.as_slice();
    let wdat = w.as_slice();
    let od = out.as_mut_slice();
    let pad = spec.padding as isize;
    for in_ in 0..n {
        for co in 0..cout {
            for ci in 0..cin {
                let xoff = (in_ * cin + ci) * h * wd;
                let woff = (co * cin + ci) * kh * kw;
                for oy in 0..ho {
                    let base_iy = (oy * spec.stride) as isize - pad;
                    for ky in 0..kh {
                        let iy = base_iy + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = xoff + iy as usize * wd;
                        let wrow = woff + ky * kw;
                        let orow = ((in_ * cout + co) * ho + oy) * wo;
                        for ox in 0..wo {
                            let base_ix = (ox * spec.stride) as isize - pad;
                            let mut acc = 0.0;
                            for kx in 0..kw {
                                let ix = base_ix + kx as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                acc += xd[xrow + ix as usize] * wdat[wrow + kx];
                            }
                            od[orow + ox] += acc;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Gradient of [`conv2d`] with respect to the input.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    w: &Tensor,
    input_shape: &[usize],
    spec: Conv2dSpec,
) -> Tensor {
    let (n, cin, h, wd) = unpack4(input_shape, "conv2d input");
    let (cout, _cin, kh, kw) = unpack4(w.shape(), "conv2d weight");
    let (gn, gcout, ho, wo) = unpack4(grad_out.shape(), "conv2d grad");
    assert_eq!((gn, gcout), (n, cout), "conv2d grad shape mismatch");
    let mut gx = Tensor::zeros(input_shape);
    let gxd = gx.as_mut_slice();
    let god = grad_out.as_slice();
    let wdat = w.as_slice();
    let pad = spec.padding as isize;
    for in_ in 0..n {
        for co in 0..cout {
            for ci in 0..cin {
                let xoff = (in_ * cin + ci) * h * wd;
                let woff = (co * cin + ci) * kh * kw;
                for oy in 0..ho {
                    let base_iy = (oy * spec.stride) as isize - pad;
                    let orow = ((in_ * cout + co) * ho + oy) * wo;
                    for ky in 0..kh {
                        let iy = base_iy + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = xoff + iy as usize * wd;
                        let wrow = woff + ky * kw;
                        for ox in 0..wo {
                            let g = god[orow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            let base_ix = (ox * spec.stride) as isize - pad;
                            for kx in 0..kw {
                                let ix = base_ix + kx as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                gxd[xrow + ix as usize] += g * wdat[wrow + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    gx
}

/// Gradient of [`conv2d`] with respect to the weight.
pub fn conv2d_backward_weight(
    grad_out: &Tensor,
    x: &Tensor,
    weight_shape: &[usize],
    spec: Conv2dSpec,
) -> Tensor {
    let (n, cin, h, wd) = unpack4(x.shape(), "conv2d input");
    let (cout, _cin, kh, kw) = unpack4(weight_shape, "conv2d weight");
    let (_, _, ho, wo) = unpack4(grad_out.shape(), "conv2d grad");
    let mut gw = Tensor::zeros(weight_shape);
    let gwd = gw.as_mut_slice();
    let god = grad_out.as_slice();
    let xd = x.as_slice();
    let pad = spec.padding as isize;
    for in_ in 0..n {
        for co in 0..cout {
            for ci in 0..cin {
                let xoff = (in_ * cin + ci) * h * wd;
                let woff = (co * cin + ci) * kh * kw;
                for oy in 0..ho {
                    let base_iy = (oy * spec.stride) as isize - pad;
                    let orow = ((in_ * cout + co) * ho + oy) * wo;
                    for ky in 0..kh {
                        let iy = base_iy + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = xoff + iy as usize * wd;
                        let wrow = woff + ky * kw;
                        for ox in 0..wo {
                            let g = god[orow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            let base_ix = (ox * spec.stride) as isize - pad;
                            for kx in 0..kw {
                                let ix = base_ix + kx as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                gwd[wrow + kx] += g * xd[xrow + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
    gw
}

fn unpack4(shape: &[usize], what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(shape.len(), 4, "{what} must be rank 4, got {shape:?}");
    (shape[0], shape[1], shape[2], shape[3])
}

/// 2×2 average pooling on `[N, C, H, W]` (H and W must be even).
pub fn avg_pool2(x: &Tensor) -> Tensor {
    let (n, c, h, w) = unpack4(x.shape(), "avg_pool2 input");
    assert!(h % 2 == 0 && w % 2 == 0, "avg_pool2 requires even extents");
    let (ho, wo) = (h / 2, w / 2);
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let xd = x.as_slice();
    let od = out.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let i0 = xoff + (2 * oy) * w + 2 * ox;
                let s = xd[i0] + xd[i0 + 1] + xd[i0 + w] + xd[i0 + w + 1];
                od[ooff + oy * wo + ox] = s * 0.25;
            }
        }
    }
    out
}

/// Gradient of [`avg_pool2`].
pub fn avg_pool2_backward(grad_out: &Tensor, input_shape: &[usize]) -> Tensor {
    let (n, c, h, w) = unpack4(input_shape, "avg_pool2 input");
    let (ho, wo) = (h / 2, w / 2);
    let mut gx = Tensor::zeros(input_shape);
    let gd = grad_out.as_slice();
    let gxd = gx.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let g = gd[ooff + oy * wo + ox] * 0.25;
                let i0 = xoff + (2 * oy) * w + 2 * ox;
                gxd[i0] += g;
                gxd[i0 + 1] += g;
                gxd[i0 + w] += g;
                gxd[i0 + w + 1] += g;
            }
        }
    }
    gx
}

/// Nearest-neighbour 2× upsampling on `[N, C, H, W]`.
pub fn upsample2(x: &Tensor) -> Tensor {
    let (n, c, h, w) = unpack4(x.shape(), "upsample2 input");
    let (ho, wo) = (h * 2, w * 2);
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let xd = x.as_slice();
    let od = out.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                od[ooff + oy * wo + ox] = xd[xoff + (oy / 2) * w + ox / 2];
            }
        }
    }
    out
}

/// Gradient of [`upsample2`].
pub fn upsample2_backward(grad_out: &Tensor, input_shape: &[usize]) -> Tensor {
    let (n, c, h, w) = unpack4(input_shape, "upsample2 input");
    let (ho, wo) = (h * 2, w * 2);
    let mut gx = Tensor::zeros(input_shape);
    let gd = grad_out.as_slice();
    let gxd = gx.as_mut_slice();
    for nc in 0..n * c {
        let xoff = nc * h * w;
        let ooff = nc * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                gxd[xoff + (oy / 2) * w + ox / 2] += gd[ooff + oy * wo + ox];
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(matmul(&a, &b), b);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1×1 kernel of value 1 is the identity map.
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                padding: 0,
                stride: 1,
            },
        );
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv2d_3x3_sum_kernel() {
        // All-ones 3×3 kernel with same padding computes neighbourhood sums.
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f64).collect());
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                padding: 1,
                stride: 1,
            },
        );
        // Centre output = sum of all 9 = 45.
        assert_eq!(y.as_slice()[4], 45.0);
        // Corner output = 1+2+4+5 = 12.
        assert_eq!(y.as_slice()[0], 12.0);
    }

    #[test]
    fn conv2d_stride_two_shape() {
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let w = Tensor::zeros(&[4, 3, 3, 3]);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                padding: 1,
                stride: 2,
            },
        );
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
    }

    /// Finite-difference check of the convolution gradients.
    #[test]
    fn conv2d_gradients_match_finite_difference() {
        let spec = Conv2dSpec {
            padding: 1,
            stride: 1,
        };
        let xs = [1usize, 2, 5, 4];
        let ws = [3usize, 2, 3, 3];
        let mut x = Tensor::zeros(&xs);
        let mut w = Tensor::zeros(&ws);
        for (k, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((k * 37 % 11) as f64 - 5.0) * 0.1;
        }
        for (k, v) in w.as_mut_slice().iter_mut().enumerate() {
            *v = ((k * 53 % 13) as f64 - 6.0) * 0.07;
        }
        // Loss = sum of outputs, so grad_out = ones.
        let y = conv2d(&x, &w, spec);
        let go = Tensor::full(y.shape(), 1.0);
        let gx = conv2d_backward_input(&go, &w, x.shape(), spec);
        let gw = conv2d_backward_weight(&go, &x, w.shape(), spec);
        let h = 1e-6;
        for probe in [0usize, 7, 19] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += h;
            let fp = conv2d(&xp, &w, spec).sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= h;
            let fm = conv2d(&xm, &w, spec).sum();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gx.as_slice()[probe]).abs() < 1e-6,
                "input grad at {probe}"
            );
        }
        for probe in [0usize, 10, 26] {
            let mut wp = w.clone();
            wp.as_mut_slice()[probe] += h;
            let fp = conv2d(&x, &wp, spec).sum();
            let mut wm = w.clone();
            wm.as_mut_slice()[probe] -= h;
            let fm = conv2d(&x, &wm, spec).sum();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gw.as_slice()[probe]).abs() < 1e-6,
                "weight grad at {probe}"
            );
        }
    }

    #[test]
    fn pool_and_upsample_roundtrip_shapes() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let p = avg_pool2(&x);
        assert_eq!(p.shape(), &[1, 1, 1, 1]);
        assert_eq!(p.item(), 2.5);
        let u = upsample2(&p);
        assert_eq!(u.shape(), &[1, 1, 2, 2]);
        assert!(u.as_slice().iter().all(|v| *v == 2.5));
    }

    #[test]
    fn pool_backward_distributes_evenly() {
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]);
        let gx = avg_pool2_backward(&g, &[1, 1, 2, 2]);
        assert!(gx.as_slice().iter().all(|v| *v == 1.0));
    }

    #[test]
    fn upsample_backward_sums_children() {
        let g = Tensor::full(&[1, 1, 2, 2], 1.0);
        let gx = upsample2_backward(&g, &[1, 1, 1, 1]);
        assert_eq!(gx.item(), 4.0);
    }

    #[test]
    fn accumulate_adds() {
        let mut a = Tensor::full(&[3], 1.0);
        a.accumulate(&Tensor::full(&[3], 2.0));
        assert_eq!(a.as_slice(), &[3.0, 3.0, 3.0]);
    }
}
