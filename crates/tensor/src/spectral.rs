//! Fourier-space convolution kernels for the FNO model family.
//!
//! The forward pass transforms each input channel with a 2-D FFT, multiplies
//! the `2·mh × 2·mw` lowest-frequency "corner" modes by a learned complex
//! weight per (input-channel, output-channel) pair, and inverse-transforms,
//! keeping the real part. The backward pass is derived analytically (the
//! DFT matrix is symmetric, so its adjoint is a conjugated inverse FFT).
//!
//! The FFT butterflies always run in `f64` (the twiddle recurrences lose
//! too much accuracy in single precision); dtype-generic callers pay one
//! cast at the boundary, which is negligible next to the transform.

use crate::dtype::Dtype;
use crate::tensor::Tensor;
use maps_linalg::fft::{fft2, ifft2};
use maps_linalg::Complex64;

/// Indices of the kept frequency rows/cols: the `m` lowest positive and `m`
/// lowest negative frequencies.
fn kept(n: usize, m: usize) -> Vec<usize> {
    assert!(2 * m <= n, "mode count 2×{m} exceeds extent {n}");
    (0..m).chain(n - m..n).collect()
}

fn unpack4(shape: &[usize], what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(shape.len(), 4, "{what} must be rank 4, got {shape:?}");
    (shape[0], shape[1], shape[2], shape[3])
}

/// Forward spectral convolution.
///
/// * `x`: `[N, Cin, H, W]` real input.
/// * `w_re`, `w_im`: `[Cin, Cout, 2mh, 2mw]` complex weight halves.
///
/// Returns `[N, Cout, H, W]`.
pub fn spectral_conv_forward<E: Dtype>(
    x: &Tensor<E>,
    w_re: &Tensor<E>,
    w_im: &Tensor<E>,
    mh: usize,
    mw: usize,
) -> Tensor<E> {
    let (n, cin, h, w) = unpack4(x.shape(), "spectral input");
    let (cin2, cout, kh, kw) = unpack4(w_re.shape(), "spectral weight");
    assert_eq!(cin, cin2, "spectral channel mismatch");
    assert_eq!(w_re.shape(), w_im.shape(), "weight halves differ");
    assert_eq!((kh, kw), (2 * mh, 2 * mw), "weight mode dims mismatch");
    let rows = kept(h, mh);
    let cols = kept(w, mw);
    let hw = h * w;

    // FFT of every input channel.
    let mut xhat = vec![Complex64::ZERO; n * cin * hw];
    for nc in 0..n * cin {
        let src = &x.as_slice()[nc * hw..(nc + 1) * hw];
        let dst = &mut xhat[nc * hw..(nc + 1) * hw];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Complex64::from_re(s.to_f64());
        }
        fft2(dst, h, w);
    }

    let mut out = Tensor::zeros(&[n, cout, h, w]);
    let wr = w_re.as_slice();
    let wi = w_im.as_slice();
    let mut yhat = vec![Complex64::ZERO; hw];
    for in_ in 0..n {
        for co in 0..cout {
            for z in yhat.iter_mut() {
                *z = Complex64::ZERO;
            }
            for ci in 0..cin {
                let xoff = (in_ * cin + ci) * hw;
                let woff = (ci * cout + co) * kh * kw;
                for (ri, &r) in rows.iter().enumerate() {
                    for (ci2, &c) in cols.iter().enumerate() {
                        let widx = woff + ri * kw + ci2;
                        let wv = Complex64::new(wr[widx].to_f64(), wi[widx].to_f64());
                        yhat[r * w + c] += xhat[xoff + r * w + c] * wv;
                    }
                }
            }
            ifft2(&mut yhat, h, w);
            let dst = &mut out.as_mut_slice()[(in_ * cout + co) * hw..(in_ * cout + co + 1) * hw];
            for (d, z) in dst.iter_mut().zip(&yhat) {
                *d = E::from_f64(z.re);
            }
        }
    }
    out
}

/// Backward pass of [`spectral_conv_forward`].
///
/// Returns `(grad_x, grad_w_re, grad_w_im)`.
pub fn spectral_conv_backward<E: Dtype>(
    grad_out: &Tensor<E>,
    x: &Tensor<E>,
    w_re: &Tensor<E>,
    w_im: &Tensor<E>,
    mh: usize,
    mw: usize,
) -> (Tensor<E>, Tensor<E>, Tensor<E>) {
    let (n, cin, h, w) = unpack4(x.shape(), "spectral input");
    let (_, cout, kh, kw) = unpack4(w_re.shape(), "spectral weight");
    let rows = kept(h, mh);
    let cols = kept(w, mw);
    let hw = h * w;
    let scale = (h * w) as f64;

    // Recompute the forward FFTs of x (cheap relative to storing them).
    let mut xhat = vec![Complex64::ZERO; n * cin * hw];
    for nc in 0..n * cin {
        let src = &x.as_slice()[nc * hw..(nc + 1) * hw];
        let dst = &mut xhat[nc * hw..(nc + 1) * hw];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Complex64::from_re(s.to_f64());
        }
        fft2(dst, h, w);
    }

    // Gradient carrier G_Y = conj(IFFT2(g)) per output channel.
    let mut gy = vec![Complex64::ZERO; n * cout * hw];
    for nc in 0..n * cout {
        let src = &grad_out.as_slice()[nc * hw..(nc + 1) * hw];
        let dst = &mut gy[nc * hw..(nc + 1) * hw];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Complex64::from_re(s.to_f64());
        }
        ifft2(dst, h, w);
        for z in dst.iter_mut() {
            *z = z.conj();
        }
    }

    let wr = w_re.as_slice();
    let wi = w_im.as_slice();
    let mut grad_wr = Tensor::zeros(w_re.shape());
    let mut grad_wi = Tensor::zeros(w_im.shape());
    let mut grad_x = Tensor::zeros(x.shape());
    let mut gx_hat = vec![Complex64::ZERO; hw];

    for in_ in 0..n {
        for ci in 0..cin {
            for z in gx_hat.iter_mut() {
                *z = Complex64::ZERO;
            }
            let xoff = (in_ * cin + ci) * hw;
            for co in 0..cout {
                let goff = (in_ * cout + co) * hw;
                let woff = (ci * cout + co) * kh * kw;
                for (ri, &r) in rows.iter().enumerate() {
                    for (ci2, &c) in cols.iter().enumerate() {
                        let widx = woff + ri * kw + ci2;
                        let wv = Complex64::new(wr[widx].to_f64(), wi[widx].to_f64());
                        let g = gy[goff + r * w + c];
                        // G_X += conj(W)·G_Y ; G_W += conj(X)·G_Y
                        gx_hat[r * w + c] += wv.conj() * g;
                        let gw = xhat[xoff + r * w + c].conj() * g;
                        grad_wr.as_mut_slice()[widx] += E::from_f64(gw.re);
                        grad_wi.as_mut_slice()[widx] += E::from_f64(gw.im);
                    }
                }
            }
            // dL/dx = Re(H·W·IFFT2(G_X))
            ifft2(&mut gx_hat, h, w);
            let dst = &mut grad_x.as_mut_slice()[xoff..xoff + hw];
            for (d, z) in dst.iter_mut().zip(&gx_hat) {
                *d = E::from_f64(z.re * scale);
            }
        }
    }
    (grad_x, grad_wr, grad_wi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_weight_on_all_modes_is_identity_map() {
        // Keeping every mode (2m = extent) with weight 1+0i reproduces x.
        let (h, w) = (4, 4);
        let x = Tensor::from_vec(
            &[1, 1, h, w],
            (0..h * w).map(|k| (k as f64 * 0.37).sin()).collect(),
        );
        let wr = Tensor::full(&[1, 1, h, w], 1.0);
        let wi = Tensor::zeros(&[1, 1, h, w]);
        let y = spectral_conv_forward(&x, &wr, &wi, h / 2, w / 2);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn truncation_removes_high_frequencies() {
        // A pure Nyquist-frequency signal is outside the kept corner modes
        // when m is small, so the output is (nearly) zero.
        let (h, w) = (8, 8);
        let x = Tensor::from_vec(
            &[1, 1, h, w],
            (0..h * w)
                .map(|k| if (k / w + k % w) % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        );
        let wr = Tensor::full(&[1, 1, 2, 2], 1.0);
        let wi = Tensor::zeros(&[1, 1, 2, 2]);
        let y = spectral_conv_forward(&x, &wr, &wi, 1, 1);
        assert!(y.norm_sqr() < 1e-18, "residual {}", y.norm_sqr());
    }

    #[test]
    fn output_shape_has_cout_channels() {
        let x = Tensor::<f64>::zeros(&[2, 3, 8, 8]);
        let wr = Tensor::zeros(&[3, 5, 4, 4]);
        let wi = Tensor::zeros(&[3, 5, 4, 4]);
        let y = spectral_conv_forward(&x, &wr, &wi, 2, 2);
        assert_eq!(y.shape(), &[2, 5, 8, 8]);
    }

    #[test]
    fn f32_forward_tracks_f64() {
        let (h, w) = (8, 8);
        let x = Tensor::from_vec(
            &[1, 2, h, w],
            (0..2 * h * w).map(|k| (k as f64 * 0.29).cos()).collect(),
        );
        let wr = Tensor::from_vec(
            &[2, 1, 4, 4],
            (0..32).map(|k| (k as f64 * 0.11).sin() * 0.5).collect(),
        );
        let wi = Tensor::from_vec(
            &[2, 1, 4, 4],
            (0..32).map(|k| (k as f64 * 0.07).cos() * 0.5).collect(),
        );
        let y64 = spectral_conv_forward(&x, &wr, &wi, 2, 2);
        let y32 =
            spectral_conv_forward(&x.cast::<f32>(), &wr.cast::<f32>(), &wi.cast::<f32>(), 2, 2);
        for (a, b) in y64.as_slice().iter().zip(y32.as_slice()) {
            assert!((a - b.to_f64()).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds extent")]
    fn too_many_modes_panics() {
        let x = Tensor::<f64>::zeros(&[1, 1, 4, 4]);
        let wr = Tensor::zeros(&[1, 1, 6, 6]);
        let wi = Tensor::zeros(&[1, 1, 6, 6]);
        spectral_conv_forward(&x, &wr, &wi, 3, 3);
    }
}
