//! Differentiable tensor ops, generic over dtype and tape.
//!
//! Every op is a method on [`Tensor<E, T>`] that computes its value
//! eagerly and — only when `T` is an [`OwnedTape`] — records a backward
//! closure. On [`crate::NoneTape`] the `record` call is a statically
//! dispatched no-op whose builder closure is never invoked, so inference
//! performs exactly the forward arithmetic and nothing else.
//!
//! Elementwise ops are macro-generated from their forward expression and
//! per-element partial derivatives; structural ops (matmul, conv,
//! pooling, spectral conv, channel plumbing) delegate to the kernels in
//! [`crate::tensor`] for both directions.
//!
//! Binary ops take the tape from the **left** operand: `taped.add(plain)`
//! compiles, `plain.add(taped)` does not (it would drop the tape). Both
//! operands' gradients are tracked either way, keyed by uid.

use crate::dtype::Dtype;
use crate::spectral;
use crate::tape::{Merge, Tape};
use crate::tensor::{
    avg_pool2, avg_pool2_backward, conv2d, conv2d_backward_input, conv2d_backward_weight, matmul,
    transpose2, unpack4, upsample2, upsample2_backward, Conv2dSpec, Tensor,
};

/// Generates a differentiable elementwise unary op. `$fwd` maps one
/// element; `$bwd` maps `(output gradient, input element, output
/// element)` to the input-gradient contribution.
macro_rules! unary_op {
    ($(#[$meta:meta])* $name:ident, |$x:ident| $fwd:expr, |$g:ident, $xb:ident, $yb:ident| $bwd:expr) => {
        $(#[$meta])*
        // Op names intentionally mirror the std trait methods (`neg` etc.):
        // the std traits cannot express the tape-consuming signature.
        #[allow(clippy::should_implement_trait)]
        pub fn $name(self) -> Tensor<E, T> {
            let out_data: Vec<E> = self.data.iter().map(|&$x| $fwd).collect();
            let (inp, mut tape) = self.split_tape();
            let out = Tensor::from_parts(inp.shape().to_vec(), out_data);
            let (in_uid, out_uid) = (inp.uid, out.uid);
            let out_val = out.clone();
            tape.record(move || {
                Box::new(move |grads| {
                    let Some(gout) = grads.get(out_uid) else { return };
                    let gd = gout.as_slice();
                    let xd = inp.as_slice();
                    let yd = out_val.as_slice();
                    grads.accumulate_with(in_uid, inp.shape(), |i| {
                        let ($g, $xb, $yb) = (gd[i], xd[i], yd[i]);
                        $bwd
                    });
                })
            });
            out.put_tape(tape)
        }
    };
}

/// Generates a differentiable elementwise unary op with one scalar
/// argument `k` (e.g. scale). `$bwd` maps `(output gradient, k)`.
macro_rules! unary_scalar_op {
    ($(#[$meta:meta])* $name:ident, |$x:ident, $k:ident| $fwd:expr, |$g:ident, $kb:ident| $bwd:expr) => {
        $(#[$meta])*
        pub fn $name(self, k: E) -> Tensor<E, T> {
            let out_data: Vec<E> = self
                .data
                .iter()
                .map(|&$x| {
                    let $k = k;
                    $fwd
                })
                .collect();
            let (inp, mut tape) = self.split_tape();
            let out = Tensor::from_parts(inp.shape().to_vec(), out_data);
            let (in_uid, out_uid) = (inp.uid, out.uid);
            tape.record(move || {
                Box::new(move |grads| {
                    let Some(gout) = grads.get(out_uid) else { return };
                    let gd = gout.as_slice();
                    grads.accumulate_with(in_uid, inp.shape(), |i| {
                        let ($g, $kb) = (gd[i], k);
                        $bwd
                    });
                })
            });
            out.put_tape(tape)
        }
    };
}

/// Generates a differentiable elementwise binary op. `$bwd` maps
/// `(output gradient, lhs element, rhs element)` to the pair of
/// `(lhs, rhs)` gradient contributions.
macro_rules! binary_op {
    ($(#[$meta:meta])* $name:ident, |$a:ident, $b:ident| $fwd:expr,
     |$g:ident, $av:ident, $bv:ident| ($dl:expr, $dr:expr)) => {
        $(#[$meta])*
        // Op names intentionally mirror the std trait methods (`add`/`sub`/
        // `mul`): the std traits cannot express the `Merge` tape signature.
        #[allow(clippy::should_implement_trait)]
        pub fn $name<R>(self, rhs: Tensor<E, R>) -> Tensor<E, T>
        where
            T: Merge<R, Output = T>,
        {
            assert_eq!(
                self.shape,
                rhs.shape,
                concat!(stringify!($name), " shape mismatch")
            );
            let out_data: Vec<E> = self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&$a, &$b)| $fwd)
                .collect();
            let (l, lt) = self.split_tape();
            let (r, rt) = rhs.split_tape();
            let mut tape = lt.merge(rt);
            let out = Tensor::from_parts(l.shape().to_vec(), out_data);
            let (lu, ru, ou) = (l.uid, r.uid, out.uid);
            tape.record(move || {
                Box::new(move |grads| {
                    let Some(gout) = grads.get(ou) else { return };
                    let gd = gout.as_slice();
                    let ad = l.as_slice();
                    let bd = r.as_slice();
                    grads.accumulate_with(lu, l.shape(), |i| {
                        #[allow(unused_variables)]
                        let ($g, $av, $bv) = (gd[i], ad[i], bd[i]);
                        $dl
                    });
                    grads.accumulate_with(ru, r.shape(), |i| {
                        #[allow(unused_variables)]
                        let ($g, $av, $bv) = (gd[i], ad[i], bd[i]);
                        $dr
                    });
                })
            });
            out.put_tape(tape)
        }
    };
}

const GELU_C: f64 = 0.7978845608028654; // √(2/π)
const GELU_A: f64 = 0.044715;

impl<E: Dtype, T: Tape<E>> Tensor<E, T> {
    unary_op!(
        /// Rectified linear unit.
        relu,
        |x| x.max(E::ZERO),
        |g, x, _y| if x > E::ZERO { g } else { E::ZERO }
    );

    unary_op!(
        /// GELU activation (tanh approximation).
        gelu,
        |x| {
            let c = E::from_f64(GELU_C);
            let a = E::from_f64(GELU_A);
            let half = E::from_f64(0.5);
            half * x * (E::ONE + (c * (x + a * x * x * x)).tanh())
        },
        |g, x, _y| {
            let c = E::from_f64(GELU_C);
            let a = E::from_f64(GELU_A);
            let half = E::from_f64(0.5);
            let three = E::from_f64(3.0);
            let t = (c * (x + a * x * x * x)).tanh();
            let du = c * (E::ONE + three * a * x * x);
            g * (half * (E::ONE + t) + half * x * (E::ONE - t * t) * du)
        }
    );

    unary_op!(
        /// Hyperbolic tangent.
        tanh,
        |x| x.tanh(),
        |g, _x, y| g * (E::ONE - y * y)
    );

    unary_op!(
        /// Elementwise square `x²`.
        square,
        |x| x * x,
        |g, x, _y| g * (x + x)
    );

    unary_op!(
        /// Elementwise negation `−x`.
        neg,
        |x| -x,
        |g, _x, _y| -g
    );

    unary_scalar_op!(
        /// Scales by a constant: `k · x`.
        scale,
        |x, k| x * k,
        |g, k| g * k
    );

    unary_scalar_op!(
        /// Adds a constant to every element.
        add_scalar,
        |x, k| x + k,
        |g, _k| g
    );

    binary_op!(
        /// Elementwise sum `a + b` (same shape).
        add,
        |a, b| a + b,
        |g, _a, _b| (g, g)
    );

    binary_op!(
        /// Elementwise difference `a − b` (same shape).
        sub,
        |a, b| a - b,
        |g, _a, _b| (g, -g)
    );

    binary_op!(
        /// Elementwise (Hadamard) product `a ⊙ b` (same shape).
        mul,
        |a, b| a * b,
        |g, a, b| (g * b, g * a)
    );

    /// Sum of all elements, producing a scalar.
    pub fn sum(self) -> Tensor<E, T> {
        let total = self.sum_value();
        let (inp, mut tape) = self.split_tape();
        let out = Tensor::scalar(total);
        let (in_uid, out_uid) = (inp.uid, out.uid);
        let shape = inp.shape().to_vec();
        tape.record(move || {
            Box::new(move |grads| {
                let Some(gout) = grads.get(out_uid) else {
                    return;
                };
                let g = gout.item();
                grads.accumulate_with(in_uid, &shape, |_| g);
            })
        });
        out.put_tape(tape)
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean(self) -> Tensor<E, T> {
        let n = self.len();
        self.sum().scale(E::ONE / E::from_usize(n))
    }

    /// 2-D matrix multiply `[m, k] × [k, n]`.
    pub fn matmul<R>(self, rhs: Tensor<E, R>) -> Tensor<E, T>
    where
        T: Merge<R, Output = T>,
    {
        let (l, lt) = self.split_tape();
        let (r, rt) = rhs.split_tape();
        let mut tape = lt.merge(rt);
        let out = matmul(&l, &r);
        let (lu, ru, ou) = (l.uid, r.uid, out.uid);
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                grads.accumulate(lu, matmul(&g, &transpose2(&r)));
                grads.accumulate(ru, matmul(&transpose2(&l), &g));
            })
        });
        out.put_tape(tape)
    }

    /// Adds a per-column bias `b[M]` to a matrix `x[N, M]`.
    pub fn add_bias_cols<R>(self, bias: Tensor<E, R>) -> Tensor<E, T>
    where
        T: Merge<R, Output = T>,
    {
        assert_eq!(self.shape.len(), 2, "add_bias_cols expects a matrix");
        let (n, m) = (self.shape[0], self.shape[1]);
        assert_eq!(bias.shape(), &[m], "bias length mismatch");
        let mut out_data = self.data.as_ref().clone();
        for r in 0..n {
            for c in 0..m {
                out_data[r * m + c] += bias.as_slice()[c];
            }
        }
        let (x, xt) = self.split_tape();
        let (b, bt) = bias.split_tape();
        let mut tape = xt.merge(bt);
        let out = Tensor::from_parts(x.shape().to_vec(), out_data);
        let (xu, bu, ou) = (x.uid, b.uid, out.uid);
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                let gd = g.as_slice();
                grads.accumulate(xu, g.clone());
                grads.accumulate_with(bu, &[m], |c| (0..n).map(|r| gd[r * m + c]).sum());
            })
        });
        out.put_tape(tape)
    }

    /// Adds a per-channel bias `b[C]` to an NCHW tensor.
    pub fn add_bias_channel<R>(self, bias: Tensor<E, R>) -> Tensor<E, T>
    where
        T: Merge<R, Output = T>,
    {
        let (n, c, h, w) = unpack4(&self.shape, "add_bias_channel input");
        assert_eq!(bias.shape(), &[c], "bias length mismatch");
        let hw = h * w;
        let mut out_data = self.data.as_ref().clone();
        for in_ in 0..n {
            for ch in 0..c {
                let off = (in_ * c + ch) * hw;
                let bv = bias.as_slice()[ch];
                for v in &mut out_data[off..off + hw] {
                    *v += bv;
                }
            }
        }
        let (x, xt) = self.split_tape();
        let (b, bt) = bias.split_tape();
        let mut tape = xt.merge(bt);
        let out = Tensor::from_parts(x.shape().to_vec(), out_data);
        let (xu, bu, ou) = (x.uid, b.uid, out.uid);
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                let gd = g.as_slice();
                grads.accumulate(xu, g.clone());
                grads.accumulate_with(bu, &[c], |ch| {
                    let mut acc = E::ZERO;
                    for in_ in 0..n {
                        let off = (in_ * c + ch) * hw;
                        acc += gd[off..off + hw].iter().copied().sum();
                    }
                    acc
                });
            })
        });
        out.put_tape(tape)
    }

    /// 2-D convolution of `x[N,Cin,H,W]` with `w[Cout,Cin,Kh,Kw]`.
    pub fn conv2d<R>(self, weight: Tensor<E, R>, spec: Conv2dSpec) -> Tensor<E, T>
    where
        T: Merge<R, Output = T>,
    {
        let (x, xt) = self.split_tape();
        let (w, wt) = weight.split_tape();
        let mut tape = xt.merge(wt);
        let out = conv2d(&x, &w, spec);
        let (xu, wu, ou) = (x.uid, w.uid, out.uid);
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                grads.accumulate(xu, conv2d_backward_input(&g, &w, x.shape(), spec));
                grads.accumulate(wu, conv2d_backward_weight(&g, &x, w.shape(), spec));
            })
        });
        out.put_tape(tape)
    }

    /// 2×2 average pooling.
    pub fn avg_pool2(self) -> Tensor<E, T> {
        let (x, mut tape) = self.split_tape();
        let out = avg_pool2(&x);
        let (xu, ou) = (x.uid, out.uid);
        let shape = x.shape().to_vec();
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                grads.accumulate(xu, avg_pool2_backward(&g, &shape));
            })
        });
        out.put_tape(tape)
    }

    /// Nearest-neighbour 2× upsampling.
    pub fn upsample2(self) -> Tensor<E, T> {
        let (x, mut tape) = self.split_tape();
        let out = upsample2(&x);
        let (xu, ou) = (x.uid, out.uid);
        let shape = x.shape().to_vec();
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                grads.accumulate(xu, upsample2_backward(&g, &shape));
            })
        });
        out.put_tape(tape)
    }

    /// Concatenates two NCHW tensors along the channel dimension.
    ///
    /// # Panics
    ///
    /// Panics if batch or spatial dimensions disagree.
    pub fn concat_channels<R>(self, rhs: Tensor<E, R>) -> Tensor<E, T>
    where
        T: Merge<R, Output = T>,
    {
        let (n, c1, h, w) = unpack4(&self.shape, "concat lhs");
        let (n2, c2, h2, w2) = unpack4(rhs.shape(), "concat rhs");
        assert_eq!((n, h, w), (n2, h2, w2), "concat spatial mismatch");
        let hw = h * w;
        let total_c = c1 + c2;
        let mut out = Tensor::zeros(&[n, total_c, h, w]);
        {
            let od = out.as_mut_slice();
            for in_ in 0..n {
                for ch in 0..c1 {
                    let so = (in_ * c1 + ch) * hw;
                    let to = (in_ * total_c + ch) * hw;
                    od[to..to + hw].copy_from_slice(&self.data[so..so + hw]);
                }
                for ch in 0..c2 {
                    let so = (in_ * c2 + ch) * hw;
                    let to = (in_ * total_c + c1 + ch) * hw;
                    od[to..to + hw].copy_from_slice(&rhs.data[so..so + hw]);
                }
            }
        }
        let (l, lt) = self.split_tape();
        let (r, rt) = rhs.split_tape();
        let mut tape = lt.merge(rt);
        let (lu, ru, ou) = (l.uid, r.uid, out.uid);
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                let gd = g.as_slice();
                let mut gl = Tensor::zeros(l.shape());
                let mut gr = Tensor::zeros(r.shape());
                {
                    let gld = gl.as_mut_slice();
                    let grd = gr.as_mut_slice();
                    for in_ in 0..n {
                        for ch in 0..c1 {
                            let so = (in_ * total_c + ch) * hw;
                            let to = (in_ * c1 + ch) * hw;
                            gld[to..to + hw].copy_from_slice(&gd[so..so + hw]);
                        }
                        for ch in 0..c2 {
                            let so = (in_ * total_c + c1 + ch) * hw;
                            let to = (in_ * c2 + ch) * hw;
                            grd[to..to + hw].copy_from_slice(&gd[so..so + hw]);
                        }
                    }
                }
                grads.accumulate(lu, gl);
                grads.accumulate(ru, gr);
            })
        });
        out.put_tape(tape)
    }

    /// Slices channels `[from, to)` of an NCHW tensor.
    pub fn slice_channels(self, from: usize, to: usize) -> Tensor<E, T> {
        let (n, c, h, w) = unpack4(&self.shape, "slice_channels input");
        assert!(from < to && to <= c, "channel slice out of range");
        let hw = h * w;
        let nc = to - from;
        let mut out = Tensor::zeros(&[n, nc, h, w]);
        {
            let od = out.as_mut_slice();
            for in_ in 0..n {
                for ch in 0..nc {
                    let so = (in_ * c + from + ch) * hw;
                    let to_off = (in_ * nc + ch) * hw;
                    od[to_off..to_off + hw].copy_from_slice(&self.data[so..so + hw]);
                }
            }
        }
        let (x, mut tape) = self.split_tape();
        let (xu, ou) = (x.uid, out.uid);
        let in_shape = x.shape().to_vec();
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                let gd = g.as_slice();
                let mut gx = Tensor::zeros(&in_shape);
                {
                    let gxd = gx.as_mut_slice();
                    for in_ in 0..n {
                        for ch in 0..nc {
                            let so = (in_ * nc + ch) * hw;
                            let to_off = (in_ * c + from + ch) * hw;
                            gxd[to_off..to_off + hw].copy_from_slice(&gd[so..so + hw]);
                        }
                    }
                }
                grads.accumulate(xu, gx);
            })
        });
        out.put_tape(tape)
    }

    /// Fourier-space ("spectral") convolution of the FNO family: keeps
    /// the `2·mh × 2·mw` lowest-frequency corner modes and multiplies
    /// them by a complex weight stored as two real tensors
    /// `[Cin, Cout, 2mh, 2mw]`.
    pub fn spectral_conv(
        self,
        w_re: Tensor<E>,
        w_im: Tensor<E>,
        mh: usize,
        mw: usize,
    ) -> Tensor<E, T> {
        let (x, mut tape) = self.split_tape();
        let out = spectral::spectral_conv_forward(&x, &w_re, &w_im, mh, mw);
        let (xu, ru, iu, ou) = (x.uid, w_re.uid, w_im.uid, out.uid);
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                let (gx, gwr, gwi) = spectral::spectral_conv_backward(&g, &x, &w_re, &w_im, mh, mw);
                grads.accumulate(xu, gx);
                grads.accumulate(ru, gwr);
                grads.accumulate(iu, gwi);
            })
        });
        out.put_tape(tape)
    }

    /// Global average pooling: `[N, C, H, W] → [N, C]`.
    pub fn global_avg_pool(self) -> Tensor<E, T> {
        let (n, c, h, w) = unpack4(&self.shape, "global_avg_pool input");
        let hw = h * w;
        let inv = E::ONE / E::from_usize(hw);
        let mut out = Tensor::zeros(&[n, c]);
        {
            let od = out.as_mut_slice();
            for nc in 0..n * c {
                od[nc] = self.data[nc * hw..(nc + 1) * hw].iter().copied().sum::<E>() * inv;
            }
        }
        let (x, mut tape) = self.split_tape();
        let (xu, ou) = (x.uid, out.uid);
        tape.record(move || {
            Box::new(move |grads| {
                let Some(g) = grads.get(ou) else { return };
                let gd = g.as_slice();
                grads.accumulate_with(xu, &[n, c, h, w], |i| gd[i / hw] * inv);
            })
        });
        out.put_tape(tape)
    }

    /// Mean-squared error against a same-shape tensor (scalar output).
    pub fn mse<R>(self, rhs: Tensor<E, R>) -> Tensor<E, T>
    where
        T: Merge<R, Output = T>,
    {
        self.sub(rhs).square().mean()
    }

    /// Normalized MSE: `‖a − b‖² / ‖b‖²` where `b` is treated as the
    /// ground-truth (its gradient still flows, but the normalizer uses
    /// its current value as a constant).
    pub fn nmse<R>(self, rhs: Tensor<E, R>) -> Tensor<E, T>
    where
        T: Merge<R, Output = T>,
    {
        let denom = rhs.norm_sqr().max(E::from_f64(1e-30));
        self.sub(rhs).square().sum().scale(E::ONE / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generic finite-difference gradient check for a scalar-valued graph.
    pub(crate) fn grad_check(
        build: impl Fn(Tensor<f64, crate::OwnedTape<f64>>) -> Tensor<f64, crate::OwnedTape<f64>>,
        input: Tensor<f64>,
        probes: &[usize],
        tol: f64,
    ) {
        let loss = build(input.trace());
        let grads = loss.backward();
        let gx = grads
            .wrt(&input)
            .expect("input must receive gradient")
            .clone();
        let h = 1e-6;
        for &probe in probes {
            let mut xp = input.clone();
            xp.as_mut_slice()[probe] += h;
            let fp = build(xp.trace()).item();
            let mut xm = input.clone();
            xm.as_mut_slice()[probe] -= h;
            let fm = build(xm.trace()).item();
            let fd = (fp - fm) / (2.0 * h);
            let ad = gx.as_slice()[probe];
            assert!(
                (fd - ad).abs() <= tol * (1.0 + fd.abs().max(ad.abs())),
                "probe {probe}: fd {fd:.8e} vs ad {ad:.8e}"
            );
        }
    }

    pub(crate) fn ramp(shape: &[usize]) -> Tensor<f64> {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..n)
                .map(|k| ((k * 31 % 17) as f64 - 8.0) * 0.13)
                .collect(),
        )
    }

    #[test]
    fn grad_elementwise_chain() {
        grad_check(
            |x| {
                let z = x.scale(1.7).add_scalar(0.3);
                z.with_empty_tape().mul(z).sum()
            },
            ramp(&[6]),
            &[0, 2, 5],
            1e-6,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["relu", "gelu", "tanh"] {
            grad_check(
                move |x| {
                    match act {
                        "relu" => x.relu(),
                        "gelu" => x.gelu(),
                        _ => x.tanh(),
                    }
                    .sum()
                },
                // offset avoids probing relu exactly at its kink
                ramp(&[8]).map(|x| x + 0.031),
                &[1, 3, 6],
                1e-5,
            );
        }
    }

    #[test]
    fn grad_matmul() {
        let w = Tensor::from_vec(&[3, 2], vec![0.3, -0.4, 0.5, 0.1, -0.2, 0.7]);
        grad_check(
            move |x| x.matmul(w.clone()).square().sum(),
            ramp(&[2, 3]),
            &[0, 3, 5],
            1e-5,
        );
    }

    #[test]
    fn grad_conv2d_graph() {
        let w = ramp(&[2, 1, 3, 3]);
        grad_check(
            move |x| x.conv2d(w.clone(), Conv2dSpec::default()).square().sum(),
            ramp(&[1, 1, 5, 5]),
            &[0, 7, 24],
            1e-5,
        );
    }

    #[test]
    fn grad_pool_upsample_concat_slice() {
        grad_check(
            |x| {
                let u = x.with_empty_tape().avg_pool2().upsample2();
                x.concat_channels(u).slice_channels(1, 2).square().sum()
            },
            ramp(&[1, 1, 4, 4]),
            &[0, 5, 15],
            1e-5,
        );
    }

    #[test]
    fn grad_global_avg_pool() {
        grad_check(
            |x| x.global_avg_pool().square().sum(),
            ramp(&[2, 2, 2, 2]),
            &[0, 7, 15],
            1e-6,
        );
    }

    #[test]
    fn grad_bias_ops() {
        let b = ramp(&[3]);
        grad_check(
            move |x| x.add_bias_channel(b.clone()).square().sum(),
            ramp(&[2, 3, 2, 2]),
            &[0, 10, 23],
            1e-5,
        );
    }

    #[test]
    fn shared_parent_accumulates() {
        // loss = x·x summed; the same uid feeds both sides of `mul`.
        let x = Tensor::from_vec(&[1], vec![3.0]);
        let traced = x.trace();
        let loss = traced.with_empty_tape().mul(traced).sum();
        let grads = loss.backward();
        assert_eq!(grads.wrt(&x).unwrap().item(), 6.0);
    }

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let a = ramp(&[5]);
        let b = ramp(&[5]);
        assert_eq!(a.trace().mse(b).item(), 0.0);
    }

    #[test]
    fn nmse_is_scale_invariant() {
        let t1 = ramp(&[6]);
        let t2 = t1.map(|x| x * 10.0);
        // NMSE of zero prediction is always 1 regardless of target scale.
        let l1 = Tensor::zeros(&[6]).trace().nmse(t1).item();
        let l2 = Tensor::zeros(&[6]).trace().nmse(t2).item();
        assert!((l1 - 1.0).abs() < 1e-12);
        assert!((l2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grad_spectral_conv() {
        let wr = ramp(&[1, 1, 2, 2]);
        let wi = ramp(&[1, 1, 2, 2]).map(|x| x * 0.5 + 0.02);
        grad_check(
            move |x| x.spectral_conv(wr.clone(), wi.clone(), 1, 1).square().sum(),
            ramp(&[1, 1, 4, 4]),
            &[0, 6, 13],
            1e-5,
        );
    }

    #[test]
    fn grad_spectral_conv_weights() {
        // Check weight gradients through a param store.
        let x = ramp(&[2, 2, 4, 4]);
        let mut params = crate::Params::<f64>::new();
        let wr = params.alloc(ramp(&[2, 3, 2, 2]));
        let wi = params.alloc(ramp(&[2, 3, 2, 2]).map(|v| v * 0.3 - 0.01));
        let run = |params: &crate::Params<f64>| -> (f64, Vec<f64>, Vec<f64>) {
            let wrv = params.get(wr).clone();
            let wiv = params.get(wi).clone();
            let loss = x.trace().spectral_conv(wrv, wiv, 1, 1).square().sum();
            let (val, grads) = (loss.no_tape().item(), loss.backward());
            let gr = grads.wrt(params.get(wr)).unwrap().as_slice().to_vec();
            let gi = grads.wrt(params.get(wi)).unwrap().as_slice().to_vec();
            (val, gr, gi)
        };
        let (_, gr, gi) = run(&params);
        let h = 1e-6;
        for probe in [0usize, 5, 11] {
            let mut pp = params.clone();
            pp.get_mut(wr).as_mut_slice()[probe] += h;
            let (fp, _, _) = run(&pp);
            let mut pm = params.clone();
            pm.get_mut(wr).as_mut_slice()[probe] -= h;
            let (fm, _, _) = run(&pm);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gr[probe]).abs() < 1e-4 * (1.0 + fd.abs()),
                "w_re probe {probe}: {fd} vs {}",
                gr[probe]
            );
            let mut pp = params.clone();
            pp.get_mut(wi).as_mut_slice()[probe] += h;
            let (fp, _, _) = run(&pp);
            let mut pm = params.clone();
            pm.get_mut(wi).as_mut_slice()[probe] -= h;
            let (fm, _, _) = run(&pm);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gi[probe]).abs() < 1e-4 * (1.0 + fd.abs()),
                "w_im probe {probe}: {fd} vs {}",
                gi[probe]
            );
        }
    }

    #[test]
    fn f32_forward_matches_f64_within_tolerance() {
        let x = ramp(&[1, 2, 4, 4]);
        let w = ramp(&[2, 2, 3, 3]);
        let y64 = x.clone().conv2d(w.clone(), Conv2dSpec::default()).gelu();
        let y32 = x
            .cast::<f32>()
            .conv2d(w.cast::<f32>(), Conv2dSpec::default())
            .gelu();
        for (a, b) in y64.as_slice().iter().zip(y32.as_slice()) {
            assert!((a - *b as f64).abs() < 1e-5, "{a} vs {b}");
        }
    }
}
