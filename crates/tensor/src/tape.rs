//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation as a node holding its value and a
//! backward closure; [`Tape::backward`] walks the tape in reverse, exactly
//! like a miniature PyTorch. Gradients are available both for parameters
//! (via [`Gradients::param_grads`]) and for *inputs* — the latter is what
//! the paper's "AD-Black Box" and "AD-Pred Field" gradient methods in
//! Table II rely on.

use crate::spectral;
use crate::tensor::{
    avg_pool2, avg_pool2_backward, conv2d, conv2d_backward_input, conv2d_backward_weight, matmul,
    upsample2, upsample2_backward, Conv2dSpec, Tensor,
};

/// Handle to a trainable parameter in a [`Params`] store.
///
/// Ids are scoped to the store that allocated them (each store carries a
/// process-unique tag), so optimizers stepping one store safely ignore
/// gradients belonging to another — e.g. the frozen forward model inside a
/// tandem setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId {
    store: u64,
    index: usize,
}

static STORE_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Storage for trainable parameters, stable across training steps.
#[derive(Debug, Clone)]
pub struct Params {
    store: u64,
    tensors: Vec<Tensor>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            store: STORE_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            tensors: Vec::new(),
        }
    }
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its handle.
    pub fn alloc(&mut self, tensor: Tensor) -> ParamId {
        self.tensors.push(tensor);
        ParamId {
            store: self.store,
            index: self.tensors.len() - 1,
        }
    }

    /// Returns `true` when `id` was allocated by this store (or a clone of
    /// it).
    pub fn owns(&self, id: ParamId) -> bool {
        id.store == self.store
    }

    /// Value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to a different store.
    pub fn get(&self, id: ParamId) -> &Tensor {
        assert!(self.owns(id), "parameter id from a different store");
        &self.tensors[id.index]
    }

    /// Mutable value of a parameter (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to a different store.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        assert!(self.owns(id), "parameter id from a different store");
        &mut self.tensors[id.index]
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Returns `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn total_elements(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        let store = self.store;
        (0..self.tensors.len()).map(move |index| ParamId { store, index })
    }
}

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor], &Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    param: Option<ParamId>,
}

/// The autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.len())
    }
}

/// Gradients produced by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
    params: Vec<(ParamId, usize)>,
}

impl Gradients {
    /// Gradient of the loss with respect to a tape variable (input,
    /// parameter leaf, or intermediate), if it received any.
    pub fn wrt(&self, var: Var) -> Option<&Tensor> {
        self.grads[var.0].as_ref()
    }

    /// Gradients for every parameter leaf that participated in the graph.
    /// The same parameter used at several leaves appears once per leaf;
    /// callers should accumulate.
    pub fn param_grads(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.params
            .iter()
            .filter_map(move |&(id, node)| self.grads[node].as_ref().map(|g| (id, g)))
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a variable.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    fn push(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
        param: Option<ParamId>,
    ) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            backward,
            param,
        });
        Var(self.nodes.len() - 1)
    }

    /// Registers an input (leaf) tensor; gradients flow to it.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, vec![], None, None)
    }

    /// Registers a constant; identical to [`Tape::input`] but signals intent.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, vec![], None, None)
    }

    /// Registers a parameter leaf, cloning its current value onto the tape.
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        self.push(params.get(id).clone(), vec![], None, Some(id))
    }

    /// Elementwise sum `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), |x, y| x + y);
        self.push(
            v,
            vec![a.0, b.0],
            Some(Box::new(|g, _, _| vec![g.clone(), g.clone()])),
            None,
        )
    }

    /// Elementwise difference `a − b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), |x, y| x - y);
        self.push(
            v,
            vec![a.0, b.0],
            Some(Box::new(|g, _, _| vec![g.clone(), g.map(|x| -x)])),
            None,
        )
    }

    /// Elementwise (Hadamard) product `a ⊙ b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), |x, y| x * y);
        self.push(
            v,
            vec![a.0, b.0],
            Some(Box::new(|g, p, _| {
                vec![
                    g.zip_map(p[1], |gv, bv| gv * bv),
                    g.zip_map(p[0], |gv, av| gv * av),
                ]
            })),
            None,
        )
    }

    /// Scales by a constant: `k · a`.
    pub fn scale(&mut self, a: Var, k: f64) -> Var {
        let v = self.value(a).map(|x| x * k);
        self.push(
            v,
            vec![a.0],
            Some(Box::new(move |g, _, _| vec![g.map(|x| x * k)])),
            None,
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, k: f64) -> Var {
        let v = self.value(a).map(|x| x + k);
        self.push(
            v,
            vec![a.0],
            Some(Box::new(|g, _, _| vec![g.clone()])),
            None,
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(
            v,
            vec![a.0],
            Some(Box::new(|g, p, _| {
                vec![g.zip_map(p[0], |gv, x| if x > 0.0 { gv } else { 0.0 })]
            })),
            None,
        )
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        const C: f64 = 0.7978845608028654; // √(2/π)
        const A: f64 = 0.044715;
        let f = |x: f64| 0.5 * x * (1.0 + (C * (x + A * x * x * x)).tanh());
        let v = self.value(a).map(f);
        self.push(
            v,
            vec![a.0],
            Some(Box::new(|g, p, _| {
                vec![g.zip_map(p[0], |gv, x| {
                    let u = C * (x + A * x * x * x);
                    let t = u.tanh();
                    let du = C * (1.0 + 3.0 * A * x * x);
                    gv * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
                })]
            })),
            None,
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        self.push(
            v,
            vec![a.0],
            Some(Box::new(|g, _, out| {
                vec![g.zip_map(out, |gv, t| gv * (1.0 - t * t))]
            })),
            None,
        )
    }

    /// Sum of all elements, producing a scalar.
    pub fn sum(&mut self, a: Var) -> Var {
        let shape = self.value(a).shape().to_vec();
        let v = Tensor::scalar(self.value(a).sum());
        self.push(
            v,
            vec![a.0],
            Some(Box::new(move |g, _, _| {
                vec![Tensor::full(&shape, g.item())]
            })),
            None,
        )
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean(&mut self, a: Var) -> Var {
        let n = self.value(a).len() as f64;
        let s = self.sum(a);
        self.scale(s, 1.0 / n)
    }

    /// 2-D matrix multiply `[m, k] × [k, n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = matmul(self.value(a), self.value(b));
        self.push(
            v,
            vec![a.0, b.0],
            Some(Box::new(|g, p, _| {
                let bt = transpose2(p[1]);
                let at = transpose2(p[0]);
                vec![matmul(g, &bt), matmul(&at, g)]
            })),
            None,
        )
    }

    /// Adds a per-column bias `b[M]` to a matrix `x[N, M]`.
    pub fn add_bias_cols(&mut self, x: Var, b: Var) -> Var {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(xv.shape().len(), 2, "add_bias_cols expects a matrix");
        let (n, m) = (xv.shape()[0], xv.shape()[1]);
        assert_eq!(bv.shape(), &[m], "bias length mismatch");
        let mut out = xv.clone();
        for r in 0..n {
            for c in 0..m {
                out.as_mut_slice()[r * m + c] += bv.as_slice()[c];
            }
        }
        self.push(
            out,
            vec![x.0, b.0],
            Some(Box::new(move |g, _, _| {
                let mut gb = Tensor::zeros(&[m]);
                for r in 0..n {
                    for c in 0..m {
                        gb.as_mut_slice()[c] += g.as_slice()[r * m + c];
                    }
                }
                vec![g.clone(), gb]
            })),
            None,
        )
    }

    /// Adds a per-channel bias `b[C]` to an NCHW tensor.
    pub fn add_bias_channel(&mut self, x: Var, b: Var) -> Var {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(xv.shape().len(), 4, "add_bias_channel expects NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!(bv.shape(), &[c], "bias length mismatch");
        let hw = h * w;
        let mut out = xv.clone();
        for in_ in 0..n {
            for ch in 0..c {
                let off = (in_ * c + ch) * hw;
                let bias = bv.as_slice()[ch];
                for k in 0..hw {
                    out.as_mut_slice()[off + k] += bias;
                }
            }
        }
        self.push(
            out,
            vec![x.0, b.0],
            Some(Box::new(move |g, _, _| {
                let mut gb = Tensor::zeros(&[c]);
                for in_ in 0..n {
                    for ch in 0..c {
                        let off = (in_ * c + ch) * hw;
                        let mut acc = 0.0;
                        for k in 0..hw {
                            acc += g.as_slice()[off + k];
                        }
                        gb.as_mut_slice()[ch] += acc;
                    }
                }
                vec![g.clone(), gb]
            })),
            None,
        )
    }

    /// 2-D convolution of `x[N,Cin,H,W]` with `w[Cout,Cin,Kh,Kw]`.
    pub fn conv2d(&mut self, x: Var, w: Var, spec: Conv2dSpec) -> Var {
        let v = conv2d(self.value(x), self.value(w), spec);
        self.push(
            v,
            vec![x.0, w.0],
            Some(Box::new(move |g, p, _| {
                vec![
                    conv2d_backward_input(g, p[1], p[0].shape(), spec),
                    conv2d_backward_weight(g, p[0], p[1].shape(), spec),
                ]
            })),
            None,
        )
    }

    /// 2×2 average pooling.
    pub fn avg_pool2(&mut self, x: Var) -> Var {
        let v = avg_pool2(self.value(x));
        let shape = self.value(x).shape().to_vec();
        self.push(
            v,
            vec![x.0],
            Some(Box::new(move |g, _, _| vec![avg_pool2_backward(g, &shape)])),
            None,
        )
    }

    /// Nearest-neighbour 2× upsampling.
    pub fn upsample2(&mut self, x: Var) -> Var {
        let v = upsample2(self.value(x));
        let shape = self.value(x).shape().to_vec();
        self.push(
            v,
            vec![x.0],
            Some(Box::new(move |g, _, _| vec![upsample2_backward(g, &shape)])),
            None,
        )
    }

    /// Concatenates NCHW tensors along the channel dimension.
    ///
    /// # Panics
    ///
    /// Panics if batch or spatial dimensions disagree or `vars` is empty.
    pub fn concat_channels(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat of nothing");
        let first = self.value(vars[0]).shape().to_vec();
        let (n, h, w) = (first[0], first[2], first[3]);
        let mut channels = Vec::with_capacity(vars.len());
        let mut total_c = 0;
        for &v in vars {
            let s = self.value(v).shape();
            assert_eq!(s.len(), 4, "concat expects NCHW");
            assert_eq!((s[0], s[2], s[3]), (n, h, w), "concat spatial mismatch");
            channels.push(s[1]);
            total_c += s[1];
        }
        let hw = h * w;
        let mut out = Tensor::zeros(&[n, total_c, h, w]);
        {
            let od = out.as_mut_slice();
            let mut cbase = 0;
            for (vi, &v) in vars.iter().enumerate() {
                let c = channels[vi];
                let src = self.nodes[v.0].value.as_slice();
                for in_ in 0..n {
                    for ch in 0..c {
                        let so = (in_ * c + ch) * hw;
                        let dos = (in_ * total_c + cbase + ch) * hw;
                        od[dos..dos + hw].copy_from_slice(&src[so..so + hw]);
                    }
                }
                cbase += c;
            }
        }
        let channels_clone = channels.clone();
        self.push(
            out,
            vars.iter().map(|v| v.0).collect(),
            Some(Box::new(move |g, p, _| {
                let mut grads = Vec::with_capacity(p.len());
                let mut cbase = 0;
                for (vi, parent) in p.iter().enumerate() {
                    let c = channels_clone[vi];
                    let mut gp = Tensor::zeros(parent.shape());
                    {
                        let gd = gp.as_mut_slice();
                        for in_ in 0..n {
                            for ch in 0..c {
                                let so = (in_ * total_c + cbase + ch) * hw;
                                let dos = (in_ * c + ch) * hw;
                                gd[dos..dos + hw].copy_from_slice(&g.as_slice()[so..so + hw]);
                            }
                        }
                    }
                    grads.push(gp);
                    cbase += c;
                }
                grads
            })),
            None,
        )
    }

    /// Slices channels `[from, to)` of an NCHW tensor.
    pub fn slice_channels(&mut self, x: Var, from: usize, to: usize) -> Var {
        let s = self.value(x).shape().to_vec();
        assert_eq!(s.len(), 4, "slice_channels expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(from < to && to <= c, "channel slice out of range");
        let hw = h * w;
        let nc = to - from;
        let mut out = Tensor::zeros(&[n, nc, h, w]);
        {
            let od = out.as_mut_slice();
            let src = self.value(x).as_slice();
            for in_ in 0..n {
                for ch in 0..nc {
                    let so = (in_ * c + from + ch) * hw;
                    let dos = (in_ * nc + ch) * hw;
                    od[dos..dos + hw].copy_from_slice(&src[so..so + hw]);
                }
            }
        }
        self.push(
            out,
            vec![x.0],
            Some(Box::new(move |g, p, _| {
                let mut gx = Tensor::zeros(p[0].shape());
                {
                    let gd = gx.as_mut_slice();
                    for in_ in 0..n {
                        for ch in 0..nc {
                            let so = (in_ * nc + ch) * hw;
                            let dos = (in_ * c + from + ch) * hw;
                            gd[dos..dos + hw].copy_from_slice(&g.as_slice()[so..so + hw]);
                        }
                    }
                }
                vec![gx]
            })),
            None,
        )
    }

    /// Fourier-space ("spectral") convolution of the FNO family: keeps the
    /// `2·mh × 2·mw` lowest-frequency corner modes and multiplies them by a
    /// complex weight stored as two real tensors `[Cin, Cout, 2mh, 2mw]`.
    pub fn spectral_conv(&mut self, x: Var, w_re: Var, w_im: Var, mh: usize, mw: usize) -> Var {
        let v = spectral::spectral_conv_forward(
            self.value(x),
            self.value(w_re),
            self.value(w_im),
            mh,
            mw,
        );
        self.push(
            v,
            vec![x.0, w_re.0, w_im.0],
            Some(Box::new(move |g, p, _| {
                let (gx, gwr, gwi) = spectral::spectral_conv_backward(g, p[0], p[1], p[2], mh, mw);
                vec![gx, gwr, gwi]
            })),
            None,
        )
    }

    /// Global average pooling: `[N, C, H, W] → [N, C]`.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let s = self.value(x).shape().to_vec();
        assert_eq!(s.len(), 4, "global_avg_pool expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let hw = h * w;
        let inv = 1.0 / hw as f64;
        let mut out = Tensor::zeros(&[n, c]);
        {
            let xd = self.value(x).as_slice();
            let od = out.as_mut_slice();
            for nc in 0..n * c {
                od[nc] = xd[nc * hw..(nc + 1) * hw].iter().sum::<f64>() * inv;
            }
        }
        self.push(
            out,
            vec![x.0],
            Some(Box::new(move |g, _, _| {
                let mut gx = Tensor::zeros(&[n, c, h, w]);
                for nc in 0..n * c {
                    let gv = g.as_slice()[nc] * inv;
                    for v in gx.as_mut_slice()[nc * hw..(nc + 1) * hw].iter_mut() {
                        *v = gv;
                    }
                }
                vec![gx]
            })),
            None,
        )
    }

    /// Mean-squared error between two same-shape tensors (scalar output).
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let d2 = self.mul(d, d);
        self.mean(d2)
    }

    /// Normalized MSE: `‖a − b‖² / ‖b‖²` where `b` is treated as the
    /// ground-truth (its gradient still flows, but the normalizer uses its
    /// current value as a constant).
    pub fn nmse(&mut self, a: Var, b: Var) -> Var {
        let denom = self.value(b).norm_sqr().max(1e-30);
        let d = self.sub(a, b);
        let d2 = self.mul(d, d);
        let s = self.sum(d2);
        self.scale(s, 1.0 / denom)
    }

    /// Runs reverse-mode differentiation from a scalar loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (single-element) variable.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward requires a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::full(self.nodes[loss.0].value.shape(), 1.0));
        for k in (0..self.nodes.len()).rev() {
            let Some(g) = grads[k].take() else { continue };
            if let Some(back) = &self.nodes[k].backward {
                let parent_vals: Vec<&Tensor> = self.nodes[k]
                    .parents
                    .iter()
                    .map(|&p| &self.nodes[p].value)
                    .collect();
                let pgrads = back(&g, &parent_vals, &self.nodes[k].value);
                debug_assert_eq!(pgrads.len(), self.nodes[k].parents.len());
                for (pi, pg) in self.nodes[k].parents.iter().zip(pgrads) {
                    match &mut grads[*pi] {
                        Some(existing) => existing.accumulate(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            grads[k] = Some(g);
        }
        let params = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(k, n)| n.param.map(|id| (id, k)))
            .collect();
        Gradients { grads, params }
    }
}

fn transpose2(t: &Tensor) -> Tensor {
    let (m, n) = (t.shape()[0], t.shape()[1]);
    let mut out = Tensor::zeros(&[n, m]);
    for i in 0..m {
        for j in 0..n {
            out.as_mut_slice()[j * m + i] = t.as_slice()[i * n + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generic finite-difference gradient check for a scalar-valued graph.
    fn grad_check(
        build: impl Fn(&mut Tape, Var) -> Var,
        input: Tensor,
        probes: &[usize],
        tol: f64,
    ) {
        let mut tape = Tape::new();
        let x = tape.input(input.clone());
        let loss = build(&mut tape, x);
        let grads = tape.backward(loss);
        let gx = grads.wrt(x).expect("input must receive gradient").clone();
        let h = 1e-6;
        for &probe in probes {
            let mut xp = input.clone();
            xp.as_mut_slice()[probe] += h;
            let mut tp = Tape::new();
            let vp = tp.input(xp);
            let lp = build(&mut tp, vp);
            let fp = tp.value(lp).item();
            let mut xm = input.clone();
            xm.as_mut_slice()[probe] -= h;
            let mut tm = Tape::new();
            let vm = tm.input(xm);
            let lm = build(&mut tm, vm);
            let fm = tm.value(lm).item();
            let fd = (fp - fm) / (2.0 * h);
            let ad = gx.as_slice()[probe];
            assert!(
                (fd - ad).abs() <= tol * (1.0 + fd.abs().max(ad.abs())),
                "probe {probe}: fd {fd:.8e} vs ad {ad:.8e}"
            );
        }
    }

    fn ramp(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..n)
                .map(|k| ((k * 31 % 17) as f64 - 8.0) * 0.13)
                .collect(),
        )
    }

    #[test]
    fn grad_elementwise_chain() {
        grad_check(
            |t, x| {
                let y = t.scale(x, 1.7);
                let z = t.add_scalar(y, 0.3);
                let w = t.mul(z, z);
                t.sum(w)
            },
            ramp(&[6]),
            &[0, 2, 5],
            1e-6,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["relu", "gelu", "tanh"] {
            grad_check(
                move |t, x| {
                    let y = match act {
                        "relu" => t.relu(x),
                        "gelu" => t.gelu(x),
                        _ => t.tanh(x),
                    };
                    t.sum(y)
                },
                // offset avoids probing relu exactly at its kink
                ramp(&[8]).map(|x| x + 0.031),
                &[1, 3, 6],
                1e-5,
            );
        }
    }

    #[test]
    fn grad_matmul() {
        let w = Tensor::from_vec(&[3, 2], vec![0.3, -0.4, 0.5, 0.1, -0.2, 0.7]);
        grad_check(
            move |t, x| {
                let wv = t.constant(w.clone());
                let y = t.matmul(x, wv);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            ramp(&[2, 3]),
            &[0, 3, 5],
            1e-5,
        );
    }

    #[test]
    fn grad_conv2d_graph() {
        let w = ramp(&[2, 1, 3, 3]);
        grad_check(
            move |t, x| {
                let wv = t.constant(w.clone());
                let y = t.conv2d(x, wv, Conv2dSpec::default());
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            ramp(&[1, 1, 5, 5]),
            &[0, 7, 24],
            1e-5,
        );
    }

    #[test]
    fn grad_pool_upsample_concat_slice() {
        grad_check(
            |t, x| {
                let p = t.avg_pool2(x);
                let u = t.upsample2(p);
                let c = t.concat_channels(&[x, u]);
                let s = t.slice_channels(c, 1, 2);
                let s2 = t.mul(s, s);
                t.sum(s2)
            },
            ramp(&[1, 1, 4, 4]),
            &[0, 5, 15],
            1e-5,
        );
    }

    #[test]
    fn grad_global_avg_pool() {
        grad_check(
            |t, x| {
                let p = t.global_avg_pool(x);
                let p2 = t.mul(p, p);
                t.sum(p2)
            },
            ramp(&[2, 2, 2, 2]),
            &[0, 7, 15],
            1e-6,
        );
    }

    #[test]
    fn grad_bias_ops() {
        let b = ramp(&[3]);
        grad_check(
            move |t, x| {
                let bv = t.constant(b.clone());
                let y = t.add_bias_channel(x, bv);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            ramp(&[2, 3, 2, 2]),
            &[0, 10, 23],
            1e-5,
        );
    }

    #[test]
    fn param_grads_are_collected() {
        let mut params = Params::new();
        let w = params.alloc(Tensor::from_vec(&[2], vec![2.0, 3.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        let collected: Vec<_> = grads.param_grads().collect();
        assert_eq!(collected.len(), 1);
        let (id, g) = collected[0];
        assert_eq!(id, w);
        assert_eq!(g.as_slice(), &[4.0, 6.0]); // d(w²)/dw = 2w
    }

    #[test]
    fn shared_parent_accumulates() {
        // loss = x·x summed; the same node is both parents of `mul`.
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(&[1], vec![3.0]));
        let y = tape.mul(x, x);
        let loss = tape.sum(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.wrt(x).unwrap().item(), 6.0);
    }

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let mut tape = Tape::new();
        let a = tape.input(ramp(&[5]));
        let b = tape.input(ramp(&[5]));
        let l = tape.mse(a, b);
        assert_eq!(tape.value(l).item(), 0.0);
    }

    #[test]
    fn nmse_is_scale_invariant() {
        let t1 = ramp(&[6]);
        let t2 = t1.map(|x| x * 10.0);
        let mut tape = Tape::new();
        let zero1 = tape.input(Tensor::zeros(&[6]));
        let b1 = tape.input(t1);
        let l1 = tape.nmse(zero1, b1);
        let mut tape2 = Tape::new();
        let zero2 = tape2.input(Tensor::zeros(&[6]));
        let b2 = tape2.input(t2);
        let l2 = tape2.nmse(zero2, b2);
        // NMSE of zero prediction is always 1 regardless of target scale.
        assert!((tape.value(l1).item() - 1.0).abs() < 1e-12);
        assert!((tape2.value(l2).item() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grad_spectral_conv() {
        let wr = ramp(&[1, 1, 2, 2]);
        let wi = ramp(&[1, 1, 2, 2]).map(|x| x * 0.5 + 0.02);
        grad_check(
            move |t, x| {
                let wrv = t.constant(wr.clone());
                let wiv = t.constant(wi.clone());
                let y = t.spectral_conv(x, wrv, wiv, 1, 1);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            ramp(&[1, 1, 4, 4]),
            &[0, 6, 13],
            1e-5,
        );
    }

    #[test]
    fn grad_spectral_conv_weights() {
        // Check weight gradients through a param store.
        let x = ramp(&[2, 2, 4, 4]);
        let mut params = Params::new();
        let wr = params.alloc(ramp(&[2, 3, 2, 2]));
        let wi = params.alloc(ramp(&[2, 3, 2, 2]).map(|v| v * 0.3 - 0.01));
        let run = |params: &Params| -> (f64, Vec<f64>, Vec<f64>) {
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let wrv = tape.param(params, wr);
            let wiv = tape.param(params, wi);
            let y = tape.spectral_conv(xv, wrv, wiv, 1, 1);
            let y2 = tape.mul(y, y);
            let loss = tape.sum(y2);
            let grads = tape.backward(loss);
            let gr = grads.wrt(wrv).unwrap().as_slice().to_vec();
            let gi = grads.wrt(wiv).unwrap().as_slice().to_vec();
            (tape.value(loss).item(), gr, gi)
        };
        let (_, gr, gi) = run(&params);
        let h = 1e-6;
        for probe in [0usize, 5, 11] {
            let mut pp = params.clone();
            pp.get_mut(wr).as_mut_slice()[probe] += h;
            let (fp, _, _) = run(&pp);
            let mut pm = params.clone();
            pm.get_mut(wr).as_mut_slice()[probe] -= h;
            let (fm, _, _) = run(&pm);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gr[probe]).abs() < 1e-4 * (1.0 + fd.abs()),
                "w_re probe {probe}: {fd} vs {}",
                gr[probe]
            );
            let mut pp = params.clone();
            pp.get_mut(wi).as_mut_slice()[probe] += h;
            let (fp, _, _) = run(&pp);
            let mut pm = params.clone();
            pm.get_mut(wi).as_mut_slice()[probe] -= h;
            let (fm, _, _) = run(&pm);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - gi[probe]).abs() < 1e-4 * (1.0 + fd.abs()),
                "w_im probe {probe}: {fd} vs {}",
                gi[probe]
            );
        }
    }
}
