//! Typestate tapes for reverse-mode automatic differentiation.
//!
//! Tape presence is encoded in the tensor's *type* (the dfdx idiom):
//!
//! - [`NoneTape`] — the default. Ops compute values only; no backward
//!   closure is built, boxed, or stored. Inference is zero-overhead.
//! - [`OwnedTape`] — created by [`crate::Tensor::trace`]. Every op pushes
//!   one backward closure tagged with a global sequence number;
//!   [`crate::Tensor::backward`] replays them in reverse.
//!
//! Binary ops merge their operands' tapes through [`Merge`], which is
//! only implemented for combinations that preserve gradient flow — code
//! that would silently drop a tape (e.g. an untraced left operand
//! absorbing a traced right one) fails to compile.
//!
//! Gradients are keyed by tensor uid, so a value used on several paths
//! (residual connections, skip paths via
//! [`crate::Tensor::with_empty_tape`]) accumulates gradient from each
//! path automatically.

use crate::dtype::Dtype;
use crate::tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A recorded backward step: reads the output gradient from
/// [`Gradients`] and accumulates into the operands' slots.
pub type BackwardOp<E> = Box<dyn FnOnce(&mut Gradients<E>)>;

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static TAPE_NODES: AtomicU64 = AtomicU64::new(0);

/// Total number of backward ops recorded process-wide since start.
///
/// Regression hook for the typestate guarantee: an inference pass on
/// `NoneTape` tensors must leave this counter untouched.
pub fn tape_nodes_recorded() -> u64 {
    TAPE_NODES.load(Ordering::Relaxed)
}

/// Merges two tapes into the tape of a binary op's output.
///
/// Implemented only for the lossless combinations: merging with
/// [`NoneTape`] keeps the owned tape, and merging two [`OwnedTape`]s
/// interleaves their ops by global sequence number so replaying the
/// merged tape in reverse is a valid reverse-topological order of the
/// combined graph.
pub trait Merge<Other> {
    /// The merged tape type.
    type Output;
    /// Consumes both tapes and returns the merged one.
    fn merge(self, other: Other) -> Self::Output;
}

/// The no-op tape: ops on `NoneTape` tensors record nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoneTape;

/// A gradient tape owning the backward closures of every op recorded
/// since its [`crate::Tensor::trace`] call.
#[derive(Default)]
pub struct OwnedTape<E: Dtype> {
    /// `(seq, op)` pairs in ascending `seq` order.
    ops: Vec<(u64, BackwardOp<E>)>,
}

impl<E: Dtype> fmt::Debug for OwnedTape<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OwnedTape<{}>({} ops)", E::NAME, self.ops.len())
    }
}

impl<E: Dtype> OwnedTape<E> {
    /// Number of recorded backward ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn execute(self, grads: &mut Gradients<E>) {
        debug_assert!(self.ops.windows(2).all(|w| w[0].0 <= w[1].0));
        for (_, op) in self.ops.into_iter().rev() {
            op(grads);
        }
    }
}

/// The capability a tensor's tape parameter provides: recording backward
/// ops (or statically refusing to).
pub trait Tape<E: Dtype>:
    Default + Merge<Self, Output = Self> + Merge<NoneTape, Output = Self> + Sized + 'static
{
    /// `true` for tapes that record ([`OwnedTape`]); `false` for
    /// [`NoneTape`]. Lets kernels skip gradient-only work entirely.
    const OWNS: bool;

    /// Records one backward op. The builder closure is *not called* on
    /// [`NoneTape`], so inference pays neither the boxing nor whatever
    /// state the closure would capture.
    fn record(&mut self, build: impl FnOnce() -> BackwardOp<E>);
}

impl Merge<NoneTape> for NoneTape {
    type Output = NoneTape;
    #[inline]
    fn merge(self, _: NoneTape) -> NoneTape {
        NoneTape
    }
}

impl<E: Dtype> Merge<NoneTape> for OwnedTape<E> {
    type Output = OwnedTape<E>;
    #[inline]
    fn merge(self, _: NoneTape) -> OwnedTape<E> {
        self
    }
}

impl<E: Dtype> Merge<OwnedTape<E>> for OwnedTape<E> {
    type Output = OwnedTape<E>;
    fn merge(mut self, other: OwnedTape<E>) -> OwnedTape<E> {
        if other.ops.is_empty() {
            return self;
        }
        if self.ops.is_empty() {
            return other;
        }
        // Both sides are individually sorted by seq; merge-sort keeps the
        // combined list a valid topological order of the joined graph.
        let mut merged = Vec::with_capacity(self.ops.len() + other.ops.len());
        let mut left = self.ops.drain(..).peekable();
        let mut right = other.ops.into_iter().peekable();
        loop {
            match (left.peek(), right.peek()) {
                (Some(l), Some(r)) => {
                    if l.0 <= r.0 {
                        merged.push(left.next().expect("peeked"));
                    } else {
                        merged.push(right.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.extend(left.by_ref()),
                (None, Some(_)) => merged.extend(right.by_ref()),
                (None, None) => break,
            }
        }
        OwnedTape { ops: merged }
    }
}

impl<E: Dtype> Tape<E> for NoneTape {
    const OWNS: bool = false;
    #[inline(always)]
    fn record(&mut self, _build: impl FnOnce() -> BackwardOp<E>) {}
}

impl<E: Dtype> Tape<E> for OwnedTape<E> {
    const OWNS: bool = true;
    fn record(&mut self, build: impl FnOnce() -> BackwardOp<E>) {
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        TAPE_NODES.fetch_add(1, Ordering::Relaxed);
        self.ops.push((seq, build()));
    }
}

/// Gradients produced by [`crate::Tensor::backward`], keyed by tensor
/// uid. Inputs, parameters, and intermediates that participated in the
/// loss all have entries.
pub struct Gradients<E: Dtype = f64> {
    grads: HashMap<u64, Tensor<E>>,
}

impl<E: Dtype> fmt::Debug for Gradients<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gradients<{}>({} entries)", E::NAME, self.grads.len())
    }
}

impl<E: Dtype> Gradients<E> {
    fn new() -> Self {
        Gradients {
            grads: HashMap::new(),
        }
    }

    /// Gradient of the loss with respect to `t` (input, parameter, or
    /// intermediate), if it received any. Identity is by uid, so the
    /// original untraced tensor works as a key after `trace()`.
    pub fn wrt<T>(&self, t: &Tensor<E, T>) -> Option<&Tensor<E>> {
        self.grads.get(&t.uid)
    }

    /// Gradients for every parameter of `params` that participated in
    /// the graph, already accumulated across all the uses of each leaf.
    pub fn param_grads<'a>(
        &'a self,
        params: &'a Params<E>,
    ) -> impl Iterator<Item = (ParamId, &'a Tensor<E>)> + 'a {
        params
            .ids()
            .filter_map(move |id| self.grads.get(&params.get(id).uid).map(|g| (id, g)))
    }

    /// Number of tensors that received a gradient.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Returns `true` when no gradients were produced.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// The (already accumulated) gradient flowing into `uid`, cheaply
    /// cloned (storage is shared). Backward ops use this to read their
    /// output's gradient; `None` means the op's output never reached the
    /// loss.
    pub(crate) fn get(&self, uid: u64) -> Option<Tensor<E>> {
        self.grads.get(&uid).cloned()
    }

    /// Accumulates `delta` into the gradient slot of `uid`.
    pub(crate) fn accumulate(&mut self, uid: u64, delta: Tensor<E>) {
        match self.grads.entry(uid) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().accumulate(&delta),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(delta);
            }
        }
    }

    /// Accumulates an elementwise-computed contribution into `uid`.
    pub(crate) fn accumulate_with(&mut self, uid: u64, shape: &[usize], f: impl Fn(usize) -> E) {
        let entry = self
            .grads
            .entry(uid)
            .or_insert_with(|| Tensor::zeros(shape));
        let dst = entry.as_mut_slice();
        for (i, v) in dst.iter_mut().enumerate() {
            *v += f(i);
        }
    }
}

impl<E: Dtype> Tensor<E, OwnedTape<E>> {
    /// Runs reverse-mode differentiation from a scalar loss, consuming
    /// the loss tensor and its tape.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar (single-element) value.
    pub fn backward(self) -> Gradients<E> {
        assert_eq!(self.len(), 1, "backward requires a scalar loss");
        let (value, tape) = self.split_tape();
        let mut grads = Gradients::new();
        grads.accumulate(value.uid, Tensor::full(value.shape(), E::ONE));
        tape.execute(&mut grads);
        grads
    }
}

/// Handle to a trainable parameter in a [`Params`] store.
///
/// Ids are scoped to the store that allocated them (each store carries a
/// process-unique tag), so optimizers stepping one store safely ignore
/// gradients belonging to another — e.g. the frozen forward model inside
/// a tandem setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId {
    store: u64,
    index: usize,
}

static STORE_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Storage for trainable parameters, stable across training steps and
/// generic over dtype (`f64` for training, `f32` casts for inference).
#[derive(Debug, Clone)]
pub struct Params<E: Dtype = f64> {
    store: u64,
    tensors: Vec<Tensor<E>>,
}

impl<E: Dtype> Default for Params<E> {
    fn default() -> Self {
        Params {
            store: STORE_COUNTER.fetch_add(1, Ordering::Relaxed),
            tensors: Vec::new(),
        }
    }
}

impl<E: Dtype> Params<E> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its handle.
    pub fn alloc(&mut self, tensor: Tensor<E>) -> ParamId {
        self.tensors.push(tensor);
        ParamId {
            store: self.store,
            index: self.tensors.len() - 1,
        }
    }

    /// Returns `true` when `id` was allocated by this store (or a clone
    /// or dtype cast of it).
    pub fn owns(&self, id: ParamId) -> bool {
        id.store == self.store
    }

    /// Value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to a different store.
    pub fn get(&self, id: ParamId) -> &Tensor<E> {
        assert!(self.owns(id), "parameter id from a different store");
        &self.tensors[id.index]
    }

    /// Mutable value of a parameter (used by optimizers). In-place edits
    /// keep the tensor's identity, so gradients keep resolving.
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to a different store.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor<E> {
        assert!(self.owns(id), "parameter id from a different store");
        &mut self.tensors[id.index]
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Returns `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn total_elements(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        let store = self.store;
        (0..self.tensors.len()).map(move |index| ParamId { store, index })
    }

    /// Converts every parameter to another dtype, *keeping the store tag*:
    /// existing [`ParamId`]s resolve in the cast store, so a model can run
    /// its f32 inference twin without re-wiring any layer handles.
    pub fn cast<F: Dtype>(&self) -> Params<F> {
        Params {
            store: self.store,
            tensors: self.tensors.iter().map(|t| t.cast::<F>()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_tape_records_nothing() {
        let before = tape_nodes_recorded();
        let x = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, -4.0]);
        let y = x.clone().relu().scale(2.0).add(x.clone()).sum();
        assert!(y.item().is_finite());
        assert_eq!(tape_nodes_recorded(), before, "NoneTape op recorded a node");
    }

    #[test]
    fn owned_tape_counts_nodes() {
        let before = tape_nodes_recorded();
        let x = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, -4.0]);
        let loss = x.trace().relu().sum();
        assert_eq!(tape_nodes_recorded() - before, 2);
        let grads = loss.backward();
        assert_eq!(grads.wrt(&x).unwrap().as_slice(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn merge_interleaves_by_sequence() {
        // x feeds two branches; both tapes merge at the final add. The
        // gradient through both paths accumulates on x: d/dx (x² + 3x).
        let x = Tensor::from_vec(&[2], vec![2.0, -1.0]);
        let traced = x.trace();
        let sq = traced.with_empty_tape().mul(traced.with_empty_tape());
        let lin = traced.scale(3.0);
        let loss = sq.add(lin).sum();
        let grads = loss.backward();
        // 2x + 3 at x = [2, -1] → [7, 1].
        assert_eq!(grads.wrt(&x).unwrap().as_slice(), &[7.0, 1.0]);
    }

    #[test]
    fn param_grads_are_accumulated_per_leaf() {
        let mut params = Params::<f64>::new();
        let w = params.alloc(Tensor::from_vec(&[2], vec![2.0, 3.0]));
        let wv = params.get(w).clone();
        let loss = wv.clone().trace().mul(wv).sum();
        let grads = loss.backward();
        let collected: Vec<_> = grads.param_grads(&params).collect();
        assert_eq!(collected.len(), 1);
        let (id, g) = collected[0];
        assert_eq!(id, w);
        assert_eq!(g.as_slice(), &[4.0, 6.0]); // d(w²)/dw = 2w
    }

    #[test]
    fn cast_keeps_param_ids_valid() {
        let mut params = Params::<f64>::new();
        let w = params.alloc(Tensor::from_vec(&[2], vec![0.5, -1.5]));
        let p32 = params.cast::<f32>();
        assert!(p32.owns(w));
        assert_eq!(p32.get(w).as_slice(), &[0.5f32, -1.5]);
    }
}
