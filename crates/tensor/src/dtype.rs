//! Floating-point element types for dtype-generic tensors.
//!
//! [`Dtype`] abstracts the scalar arithmetic the tensor kernels and
//! backward closures need, so every op is written once and monomorphizes
//! to both `f32` (inference) and `f64` (training / autodiff default).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A tensor element type: `f32` or `f64`.
///
/// The trait is deliberately small — just the scalar surface the kernels
/// in [`crate::tensor`] and the macro-generated ops in [`crate::ops`]
/// use. `f64` is the training default (finite-difference gradient checks
/// need the headroom); `f32` halves memory bandwidth on the inference
/// hot path.
pub trait Dtype:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Human-readable dtype name (`"f32"` / `"f64"`).
    const NAME: &'static str;

    /// Converts from `f64` (rounding for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` (exact for both dtypes).
    fn to_f64(self) -> f64;
    /// Converts from a `usize` count (used for means).
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Elementwise maximum.
    fn max(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when neither NaN nor infinite.
    fn is_finite(self) -> bool;
}

impl Dtype for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Dtype for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}
