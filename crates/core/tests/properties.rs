//! Property-based tests of the core grid/field types.

use maps_core::{ComplexField2d, Grid2d, RealField2d};
use maps_linalg::Complex64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid linear indexing is a bijection onto 0..len.
    #[test]
    fn grid_indexing_bijective(nx in 1usize..30, ny in 1usize..30) {
        let g = Grid2d::new(nx, ny, 0.1);
        let mut seen = vec![false; g.len()];
        for iy in 0..ny {
            for ix in 0..nx {
                let k = g.idx(ix, iy);
                prop_assert!(k < g.len());
                prop_assert!(!seen[k]);
                seen[k] = true;
            }
        }
    }

    /// Coordinates of any cell map back to the same cell.
    #[test]
    fn coord_cell_inverse(nx in 2usize..40, ny in 2usize..40, ix_f in 0.0..1.0f64, iy_f in 0.0..1.0f64) {
        let g = Grid2d::new(nx, ny, 0.07);
        let ix = ((nx as f64 - 1.0) * ix_f) as usize;
        let iy = ((ny as f64 - 1.0) * iy_f) as usize;
        let (x, y) = g.coord(ix, iy);
        prop_assert_eq!(g.cell_at(x, y), (ix, iy));
    }

    /// Downsample(upsample(f)) is the identity for any field and factor.
    #[test]
    fn up_down_sample_identity(
        nx in 1usize..8,
        ny in 1usize..8,
        factor in 1usize..4,
        seed in 0u64..100,
    ) {
        let g = Grid2d::new(nx, ny, 0.1);
        let mut f = RealField2d::zeros(g);
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).max(1);
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state >> 11) as f64 / (1u64 << 53) as f64;
        }
        let round = f.upsample(factor).downsample(factor);
        for (a, b) in round.as_slice().iter().zip(f.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// The normalized L2 distance is a scaled metric: symmetric in the
    /// numerator and zero only for identical fields.
    #[test]
    fn normalized_l2_definiteness(
        values in prop::collection::vec((-3.0..3.0f64, -3.0..3.0f64), 6),
        bump in 0.1..2.0f64,
    ) {
        let g = Grid2d::new(3, 2, 0.1);
        let f = ComplexField2d::from_vec(
            g,
            values.iter().map(|(re, im)| Complex64::new(*re, *im)).collect(),
        );
        prop_assume!(f.norm() > 1e-6);
        prop_assert_eq!(f.normalized_l2_distance(&f), 0.0);
        let mut g2 = f.clone();
        let v = g2.get(0, 0);
        g2.set(0, 0, v + Complex64::from_re(bump));
        prop_assert!(f.normalized_l2_distance(&g2) > 0.0);
    }

    /// Painting a rectangle never affects cells outside its bounds.
    #[test]
    fn paint_is_local(x0 in 0.0..1.0f64, y0 in 0.0..1.0f64, w in 0.05..0.5f64, h in 0.05..0.5f64) {
        let g = Grid2d::new(20, 20, 0.1);
        let mut f = RealField2d::constant(g, 1.0);
        let rect = maps_core::Rect::new(x0, y0, x0 + w, y0 + h);
        maps_core::paint(&mut f, &maps_core::Shape::Rect(rect), 5.0);
        for iy in 0..20 {
            for ix in 0..20 {
                let (cx, cy) = g.coord(ix, iy);
                if !rect.contains(cx, cy) {
                    prop_assert_eq!(f.get(ix, iy), 1.0);
                }
            }
        }
    }
}
