//! Scalar fields living on a [`Grid2d`].

use crate::grid::Grid2d;
use maps_linalg::Complex64;
use serde::{Deserialize, Serialize};

/// A real scalar field (e.g. relative permittivity) on a 2-D grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealField2d {
    grid: Grid2d,
    data: Vec<f64>,
}

impl RealField2d {
    /// Creates a field filled with `value`.
    pub fn constant(grid: Grid2d, value: f64) -> Self {
        RealField2d {
            grid,
            data: vec![value; grid.len()],
        }
    }

    /// Creates a field of zeros.
    pub fn zeros(grid: Grid2d) -> Self {
        Self::constant(grid, 0.0)
    }

    /// Creates a field from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != grid.len()`.
    pub fn from_vec(grid: Grid2d, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), grid.len(), "field data length mismatch");
        RealField2d { grid, data }
    }

    /// The grid this field lives on.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Borrow of the row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at `(ix, iy)`.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> f64 {
        self.data[self.grid.idx(ix, iy)]
    }

    /// Sets the value at `(ix, iy)`.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, v: f64) {
        let k = self.grid.idx(ix, iy);
        self.data[k] = v;
    }

    /// Minimum value over the field.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over the field.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean value over the field.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Downsamples by `factor` with box averaging onto the coarsened grid.
    ///
    /// # Panics
    ///
    /// Panics if `factor` does not divide both grid dimensions.
    pub fn downsample(&self, factor: usize) -> RealField2d {
        let coarse = self.grid.coarsen(factor);
        let mut out = RealField2d::zeros(coarse);
        let inv = 1.0 / (factor * factor) as f64;
        for iy in 0..coarse.ny {
            for ix in 0..coarse.nx {
                let mut acc = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        acc += self.get(ix * factor + dx, iy * factor + dy);
                    }
                }
                out.set(ix, iy, acc * inv);
            }
        }
        out
    }

    /// Upsamples by `factor` with nearest-neighbour replication.
    pub fn upsample(&self, factor: usize) -> RealField2d {
        let fine = Grid2d::new(
            self.grid.nx * factor,
            self.grid.ny * factor,
            self.grid.dl / factor as f64,
        );
        let mut out = RealField2d::zeros(fine);
        for iy in 0..fine.ny {
            for ix in 0..fine.nx {
                out.set(ix, iy, self.get(ix / factor, iy / factor));
            }
        }
        out
    }
}

/// A complex scalar field (e.g. the `Ez` phasor or a current density) on a
/// 2-D grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexField2d {
    grid: Grid2d,
    data: Vec<Complex64>,
}

impl ComplexField2d {
    /// Creates a field of complex zeros.
    pub fn zeros(grid: Grid2d) -> Self {
        ComplexField2d {
            grid,
            data: vec![Complex64::ZERO; grid.len()],
        }
    }

    /// Creates a field from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != grid.len()`.
    pub fn from_vec(grid: Grid2d, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), grid.len(), "field data length mismatch");
        ComplexField2d { grid, data }
    }

    /// The grid this field lives on.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Borrow of the row-major data.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable borrow of the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the field, returning the row-major data.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Value at `(ix, iy)`.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> Complex64 {
        self.data[self.grid.idx(ix, iy)]
    }

    /// Sets the value at `(ix, iy)`.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, v: Complex64) {
        let k = self.grid.idx(ix, iy);
        self.data[k] = v;
    }

    /// `L2` norm `‖f‖ = √(Σ|fᵢ|²)`.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Normalized L2 distance to another field:
    /// `‖self − other‖ / ‖other‖` — the "N-L2norm" metric of the paper.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn normalized_l2_distance(&self, other: &ComplexField2d) -> f64 {
        assert_eq!(self.grid, other.grid, "field grids differ");
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, b) in self.data.iter().zip(&other.data) {
            num += (*a - *b).norm_sqr();
            den += b.norm_sqr();
        }
        if den == 0.0 {
            if num == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (num / den).sqrt()
        }
    }

    /// Field of squared magnitudes `|f|²` (intensity).
    pub fn intensity(&self) -> RealField2d {
        RealField2d::from_vec(self.grid, self.data.iter().map(|z| z.norm_sqr()).collect())
    }
}

/// The full set of TM-polarized electromagnetic field components.
///
/// For `Ez` polarization the magnetic components `Hx`, `Hy` are derived from
/// `Ez`; MAPS stores all three because they enter the Poynting-flux monitors
/// and make up the field labels of the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmFields {
    /// Out-of-plane electric field phasor.
    pub ez: ComplexField2d,
    /// In-plane magnetic field, x component.
    pub hx: ComplexField2d,
    /// In-plane magnetic field, y component.
    pub hy: ComplexField2d,
}

impl EmFields {
    /// The grid the fields live on.
    pub fn grid(&self) -> Grid2d {
        self.ez.grid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_statistics() {
        let g = Grid2d::new(8, 4, 0.1);
        let f = RealField2d::constant(g, 2.5);
        assert_eq!(f.min(), 2.5);
        assert_eq!(f.max(), 2.5);
        assert!((f.mean() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn downsample_box_average() {
        let g = Grid2d::new(4, 2, 1.0);
        let mut f = RealField2d::zeros(g);
        // one 2x2 block all 4.0, rest 0
        f.set(0, 0, 4.0);
        f.set(1, 0, 4.0);
        f.set(0, 1, 4.0);
        f.set(1, 1, 4.0);
        let c = f.downsample(2);
        assert_eq!(c.get(0, 0), 4.0);
        assert_eq!(c.get(1, 0), 0.0);
    }

    #[test]
    fn upsample_then_downsample_is_identity() {
        let g = Grid2d::new(3, 3, 1.0);
        let mut f = RealField2d::zeros(g);
        for iy in 0..3 {
            for ix in 0..3 {
                f.set(ix, iy, (ix * 3 + iy) as f64);
            }
        }
        let round = f.upsample(2).downsample(2);
        assert_eq!(round, f);
    }

    #[test]
    fn normalized_l2_of_identical_fields_is_zero() {
        let g = Grid2d::new(5, 5, 0.2);
        let mut f = ComplexField2d::zeros(g);
        f.set(2, 2, Complex64::new(1.0, -1.0));
        assert_eq!(f.normalized_l2_distance(&f), 0.0);
    }

    #[test]
    fn normalized_l2_scales_correctly() {
        let g = Grid2d::new(2, 1, 1.0);
        let a = ComplexField2d::from_vec(g, vec![Complex64::from_re(2.0), Complex64::ZERO]);
        let b = ComplexField2d::from_vec(g, vec![Complex64::from_re(1.0), Complex64::ZERO]);
        // ‖a−b‖/‖b‖ = 1
        assert!((a.normalized_l2_distance(&b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn intensity_is_magnitude_squared() {
        let g = Grid2d::new(1, 1, 1.0);
        let f = ComplexField2d::from_vec(g, vec![Complex64::new(3.0, 4.0)]);
        assert_eq!(f.intensity().get(0, 0), 25.0);
    }

    #[test]
    fn serde_roundtrip() {
        let g = Grid2d::new(2, 2, 0.5);
        let f = ComplexField2d::from_vec(
            g,
            vec![
                Complex64::new(1.0, 2.0),
                Complex64::ZERO,
                Complex64::I,
                Complex64::ONE,
            ],
        );
        let json = serde_json::to_string(&f).unwrap();
        let back: ComplexField2d = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
