//! Optical ports: where light enters and leaves a device.

use crate::geometry::{Axis, Direction};
use serde::{Deserialize, Serialize};

/// A waveguide port: a line segment perpendicular to the propagation axis
/// through which an eigenmode is launched or measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Centre of the port cross-section (µm).
    pub center: (f64, f64),
    /// Cross-section width (µm); the mode profile is solved over this span
    /// plus surrounding cladding.
    pub width: f64,
    /// Axis along which the guided mode propagates.
    pub axis: Axis,
    /// Direction of positive power flow for this port.
    pub direction: Direction,
    /// Waveguide eigenmode index (0 = fundamental).
    pub mode_index: usize,
}

impl Port {
    /// Creates a fundamental-mode port.
    pub fn new(center: (f64, f64), width: f64, axis: Axis, direction: Direction) -> Self {
        Port {
            center,
            width,
            axis,
            direction,
            mode_index: 0,
        }
    }

    /// Returns a copy of the port selecting eigenmode `mode_index`.
    pub fn with_mode(mut self, mode_index: usize) -> Self {
        self.mode_index = mode_index;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_mode() {
        let p = Port::new((1.0, 2.0), 0.5, Axis::X, Direction::Positive).with_mode(1);
        assert_eq!(p.mode_index, 1);
        assert_eq!(p.center, (1.0, 2.0));
    }
}
