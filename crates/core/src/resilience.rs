//! Fault-tolerant solving: bounded retries, tolerance relaxation, solver
//! fallback chains, and mandatory output validation.
//!
//! A production inverse-design or dataset-generation run performs thousands
//! of solves; a single stalled BiCGSTAB or silent NaN field must degrade the
//! run, not abort it. [`RobustSolver`] wraps any [`FieldSolver`] with a
//! [`RetryPolicy`]:
//!
//! 1. **Validate** — every returned field is scanned for NaN/∞ (unless
//!    disabled); a non-finite field becomes [`SolveFieldError::NonFinite`]
//!    and is treated like any other retryable failure.
//! 2. **Retry with relaxation** — retryable failures are re-attempted up to
//!    `max_retries` times through [`FieldSolver::solve_ez_relaxed`], with the
//!    tolerance loosened by `relax_factor` per attempt (capped at
//!    `max_relax`). Relaxation is per-call only: the next solve starts from
//!    the tight tolerance again (relax-then-retighten).
//! 3. **Fall back** — if the primary is exhausted, an optional secondary
//!    solver (typically the exact direct backend behind an iterative
//!    primary, or the FDFD solver behind a neural surrogate) gets one
//!    attempt.
//!
//! Every recovery event increments the global `solve.retries` /
//! `solve.fallbacks` / `solve.nonfinite` counters and a per-instance
//! [`RobustStats`] snapshot, so telemetry shows *degradation*, not just
//! success or crash.

use crate::field::{ComplexField2d, RealField2d};
use crate::solver::{ensure_finite, FieldSolver, SolveFieldError, SolveKind, SolveRequest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Retry/fallback configuration for a [`RobustSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Additional attempts on the primary solver after the first failure.
    pub max_retries: usize,
    /// Tolerance relaxation multiplier applied per retry (attempt `k`
    /// relaxes by `relax_factor^k`). Ignored by solvers without a tolerance.
    pub relax_factor: f64,
    /// Cap on the cumulative relaxation factor.
    pub max_relax: f64,
    /// Scan every output field for NaN/∞ and convert silent numerical
    /// breakdowns into [`SolveFieldError::NonFinite`]. On by default; the
    /// scan is `O(n)` against solves that are `O(n·b²)` or worse.
    pub validate_output: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            relax_factor: 10.0,
            max_relax: 1e3,
            validate_output: true,
        }
    }
}

impl RetryPolicy {
    /// Builds a policy from environment knobs, falling back to defaults:
    ///
    /// - `MAPS_SOLVE_RETRIES` — `max_retries` (usize)
    /// - `MAPS_SOLVE_RELAX` — `relax_factor` (f64 ≥ 1)
    /// - `MAPS_SOLVE_VALIDATE` — `0`/`false`/`off` disables output
    ///   validation, `1`/`true`/`on` (the default) keeps it
    ///
    /// Malformed values warn once via [`maps_obs::warn_invalid_env`] and
    /// fall back to the default instead of being silently ignored.
    pub fn from_env() -> Self {
        let defaults = RetryPolicy::default();
        let mut policy = defaults;
        policy.max_retries = maps_obs::parse_env_or("MAPS_SOLVE_RETRIES", defaults.max_retries);
        let relax = maps_obs::parse_env_or("MAPS_SOLVE_RELAX", defaults.relax_factor);
        if relax >= 1.0 && relax.is_finite() {
            policy.relax_factor = relax;
        } else if let Ok(raw) = std::env::var("MAPS_SOLVE_RELAX") {
            maps_obs::warn_invalid_env("MAPS_SOLVE_RELAX", raw.trim(), "finite factor >= 1");
        }
        if let Ok(raw) = std::env::var("MAPS_SOLVE_VALIDATE") {
            match raw.trim() {
                "" => {}
                "0" | "false" | "off" => policy.validate_output = false,
                "1" | "true" | "on" => policy.validate_output = true,
                other => maps_obs::warn_invalid_env(
                    "MAPS_SOLVE_VALIDATE",
                    other,
                    "one of 0/false/off/1/true/on",
                ),
            }
        }
        policy
    }

    /// The tolerance factor used on 1-based retry attempt `k`.
    fn factor_for_attempt(&self, k: usize) -> f64 {
        self.relax_factor.powi(k as i32).min(self.max_relax)
    }
}

/// Per-instance recovery counters of a [`RobustSolver`].
///
/// These mirror the global `solve.*` metrics but are scoped to one wrapper,
/// so tests and pipelines can attribute recoveries to a specific solver
/// without races against other instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustStats {
    /// Primary re-attempts after a retryable failure.
    pub retries: u64,
    /// Solves answered by the fallback solver.
    pub fallbacks: u64,
    /// Fields rejected by non-finite output validation.
    pub nonfinite: u64,
    /// Solves that failed even after retries and fallback.
    pub unrecovered: u64,
    /// Solves that ultimately succeeded after at least one failure.
    pub recovered: u64,
    /// Recovery sequences abandoned because the caller's deadline passed.
    pub deadlined: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    retries: AtomicU64,
    fallbacks: AtomicU64,
    nonfinite: AtomicU64,
    unrecovered: AtomicU64,
    recovered: AtomicU64,
    deadlined: AtomicU64,
}

/// A [`FieldSolver`] wrapper that retries, relaxes, falls back, and
/// validates according to a [`RetryPolicy`]. See the module docs for the
/// recovery sequence.
pub struct RobustSolver<S: FieldSolver> {
    primary: S,
    fallback: Option<Box<dyn FieldSolver>>,
    policy: RetryPolicy,
    label: String,
    stats: StatCells,
}

impl<S: FieldSolver> RobustSolver<S> {
    /// Wraps `primary` with the given policy and no fallback.
    pub fn new(primary: S, policy: RetryPolicy) -> Self {
        let label = format!("robust({})", primary.name());
        RobustSolver {
            primary,
            fallback: None,
            policy,
            label,
            stats: StatCells::default(),
        }
    }

    /// Adds a secondary solver tried once after the primary is exhausted.
    pub fn with_fallback(mut self, fallback: Box<dyn FieldSolver>) -> Self {
        self.label = format!("robust({}->{})", self.primary.name(), fallback.name());
        self.fallback = Some(fallback);
        self
    }

    /// The wrapped primary solver.
    pub fn primary(&self) -> &S {
        &self.primary
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// A snapshot of this instance's recovery counters.
    pub fn stats(&self) -> RobustStats {
        RobustStats {
            retries: self.stats.retries.load(Ordering::Relaxed),
            fallbacks: self.stats.fallbacks.load(Ordering::Relaxed),
            nonfinite: self.stats.nonfinite.load(Ordering::Relaxed),
            unrecovered: self.stats.unrecovered.load(Ordering::Relaxed),
            recovered: self.stats.recovered.load(Ordering::Relaxed),
            deadlined: self.stats.deadlined.load(Ordering::Relaxed),
        }
    }

    /// Raises [`SolveFieldError::DeadlineExceeded`] when `deadline` has
    /// passed, counting the abandonment.
    fn check_deadline(
        &self,
        deadline: Option<Instant>,
        stage: &str,
    ) -> Result<(), SolveFieldError> {
        let Some(d) = deadline else { return Ok(()) };
        if Instant::now() < d {
            return Ok(());
        }
        self.stats.deadlined.fetch_add(1, Ordering::Relaxed);
        maps_obs::counter("solve.deadline_exceeded").inc();
        Err(SolveFieldError::DeadlineExceeded {
            detail: format!("deadline passed before {stage}"),
        })
    }

    /// Validates a primary/fallback result per the policy, counting
    /// non-finite rejections.
    fn check(
        &self,
        result: Result<ComplexField2d, SolveFieldError>,
        producer: &str,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let field = result?;
        if self.policy.validate_output {
            if let Err(e) = ensure_finite(&field, producer) {
                self.stats.nonfinite.fetch_add(1, Ordering::Relaxed);
                maps_obs::counter("solve.nonfinite").inc();
                return Err(e);
            }
        }
        Ok(field)
    }

    /// The shared retry→relax→fallback driver. `primary_attempt` runs one
    /// attempt at a given tolerance factor; `fallback_attempt` runs the
    /// secondary solver once.
    fn drive(
        &self,
        direction: &str,
        deadline: Option<Instant>,
        primary_attempt: impl Fn(f64) -> Result<ComplexField2d, SolveFieldError>,
        fallback_attempt: impl Fn(&dyn FieldSolver) -> Result<ComplexField2d, SolveFieldError>,
    ) -> Result<ComplexField2d, SolveFieldError> {
        self.check_deadline(deadline, "the first attempt")?;
        let first = primary_attempt(1.0);
        self.drive_from(
            first,
            direction,
            deadline,
            primary_attempt,
            fallback_attempt,
        )
    }

    /// Like [`RobustSolver::drive`], but seeded with an already-obtained
    /// first-attempt result. This is the batch recovery path: the primary's
    /// `solve_ez_batch` runs all first attempts together (amortizing one
    /// factorization per frequency group), and only the requests that failed
    /// re-enter the scalar retry→relax→fallback sequence.
    fn drive_from(
        &self,
        first: Result<ComplexField2d, SolveFieldError>,
        direction: &str,
        deadline: Option<Instant>,
        primary_attempt: impl Fn(f64) -> Result<ComplexField2d, SolveFieldError>,
        fallback_attempt: impl Fn(&dyn FieldSolver) -> Result<ComplexField2d, SolveFieldError>,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let first = self.check(first, self.primary.name());
        let mut last_err = match first {
            Ok(field) => return Ok(field),
            Err(e) => {
                if !e.is_retryable() {
                    self.stats.unrecovered.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
                e
            }
        };
        let _span = maps_obs::span("solve.recover")
            .field("solver", self.primary.name())
            .field("direction", direction);
        for attempt in 1..=self.policy.max_retries {
            self.check_deadline(deadline, "a relaxed retry")?;
            let factor = self.policy.factor_for_attempt(attempt);
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("solve.retries").inc();
            maps_obs::error!(
                "{} {direction} solve failed ({last_err}); retry {attempt}/{} at tolerance x{factor:.0}",
                self.primary.name(),
                self.policy.max_retries
            );
            match self.check(primary_attempt(factor), self.primary.name()) {
                Ok(field) => {
                    self.stats.recovered.fetch_add(1, Ordering::Relaxed);
                    maps_obs::counter("solve.recovered").inc();
                    return Ok(field);
                }
                Err(e) => {
                    if !e.is_retryable() {
                        self.stats.unrecovered.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    last_err = e;
                }
            }
        }
        if let Some(fb) = &self.fallback {
            self.check_deadline(deadline, "the fallback attempt")?;
            self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
            maps_obs::counter("solve.fallbacks").inc();
            maps_obs::error!(
                "{} exhausted ({last_err}); falling back to {}",
                self.primary.name(),
                fb.name()
            );
            match self.check(fallback_attempt(fb.as_ref()), fb.name()) {
                Ok(field) => {
                    self.stats.recovered.fetch_add(1, Ordering::Relaxed);
                    maps_obs::counter("solve.recovered").inc();
                    return Ok(field);
                }
                Err(e) => last_err = e,
            }
        }
        self.stats.unrecovered.fetch_add(1, Ordering::Relaxed);
        maps_obs::counter("solve.unrecovered").inc();
        Err(last_err)
    }

    /// [`FieldSolver::solve_ez`] with an optional wall-clock deadline.
    ///
    /// The deadline is checked before the first attempt, before every
    /// relaxed retry, and before the fallback attempt — a recovery sequence
    /// never outlives the caller's patience. An attempt already in flight
    /// is not interrupted (the solvers are synchronous), so one attempt's
    /// worth of overshoot is possible; what the deadline guarantees is that
    /// no *new* work starts past it.
    ///
    /// # Errors
    ///
    /// [`SolveFieldError::DeadlineExceeded`] when the deadline passes
    /// mid-recovery, otherwise as [`FieldSolver::solve_ez`].
    pub fn solve_ez_by(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        deadline: Option<Instant>,
    ) -> Result<ComplexField2d, SolveFieldError> {
        self.drive(
            "forward",
            deadline,
            |factor| {
                if factor == 1.0 {
                    self.primary.solve_ez(eps_r, source, omega)
                } else {
                    self.primary.solve_ez_relaxed(eps_r, source, omega, factor)
                }
            },
            |fb| fb.solve_ez(eps_r, source, omega),
        )
    }

    /// [`FieldSolver::solve_adjoint_ez`] with an optional wall-clock
    /// deadline (see [`RobustSolver::solve_ez_by`]).
    ///
    /// # Errors
    ///
    /// [`SolveFieldError::DeadlineExceeded`] when the deadline passes
    /// mid-recovery, otherwise as [`FieldSolver::solve_adjoint_ez`].
    pub fn solve_adjoint_ez_by(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
        deadline: Option<Instant>,
    ) -> Result<ComplexField2d, SolveFieldError> {
        self.drive(
            "adjoint",
            deadline,
            |factor| {
                if factor == 1.0 {
                    self.primary.solve_adjoint_ez(eps_r, rhs, omega)
                } else {
                    self.primary
                        .solve_adjoint_ez_relaxed(eps_r, rhs, omega, factor)
                }
            },
            |fb| fb.solve_adjoint_ez(eps_r, rhs, omega),
        )
    }
}

impl<S: FieldSolver> FieldSolver for RobustSolver<S> {
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        self.solve_ez_by(eps_r, source, omega, None)
    }

    fn solve_adjoint_ez(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        self.solve_adjoint_ez_by(eps_r, rhs, omega, None)
    }

    /// Batched solves keep the primary's batch amortization (one
    /// factorization per frequency group) for the first attempt, then
    /// recover each failed request individually through the full
    /// retry→relax→fallback sequence. One poisoned excitation therefore
    /// costs only its own recovery — the rest of the batch is untouched.
    fn solve_ez_batch(
        &self,
        eps_r: &RealField2d,
        requests: &[SolveRequest<'_>],
    ) -> Vec<Result<ComplexField2d, SolveFieldError>> {
        let firsts = self.primary.solve_ez_batch(eps_r, requests);
        debug_assert_eq!(firsts.len(), requests.len());
        firsts
            .into_iter()
            .zip(requests)
            .map(|(first, req)| match req.kind {
                SolveKind::Forward => self.drive_from(
                    first,
                    "forward",
                    None,
                    |factor| {
                        if factor == 1.0 {
                            self.primary.solve_ez(eps_r, req.source, req.omega)
                        } else {
                            self.primary
                                .solve_ez_relaxed(eps_r, req.source, req.omega, factor)
                        }
                    },
                    |fb| fb.solve_ez(eps_r, req.source, req.omega),
                ),
                SolveKind::Adjoint => self.drive_from(
                    first,
                    "adjoint",
                    None,
                    |factor| {
                        if factor == 1.0 {
                            self.primary.solve_adjoint_ez(eps_r, req.source, req.omega)
                        } else {
                            self.primary
                                .solve_adjoint_ez_relaxed(eps_r, req.source, req.omega, factor)
                        }
                    },
                    |fb| fb.solve_adjoint_ez(eps_r, req.source, req.omega),
                ),
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjectingSolver, FaultPlan, InjectedFault};
    use crate::grid::Grid2d;
    use maps_linalg::Complex64;

    struct EchoSolver;

    impl FieldSolver for EchoSolver {
        fn solve_ez(
            &self,
            _eps_r: &RealField2d,
            source: &ComplexField2d,
            _omega: f64,
        ) -> Result<ComplexField2d, SolveFieldError> {
            Ok(source.clone())
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    fn fixtures() -> (Grid2d, RealField2d, ComplexField2d) {
        let g = Grid2d::new(4, 4, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let mut j = ComplexField2d::zeros(g);
        j.set(1, 2, Complex64::new(0.5, -0.25));
        (g, eps, j)
    }

    #[test]
    fn clean_solves_pass_through_untouched() {
        let (_, eps, j) = fixtures();
        let robust = RobustSolver::new(EchoSolver, RetryPolicy::default());
        let out = robust.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(out.as_slice(), j.as_slice());
        assert_eq!(robust.stats(), RobustStats::default());
        assert_eq!(robust.name(), "robust(echo)");
    }

    #[test]
    fn transient_error_is_retried() {
        let (_, eps, j) = fixtures();
        let faulty = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new().fail_at(0, InjectedFault::Error),
        );
        let robust = RobustSolver::new(faulty, RetryPolicy::default());
        let out = robust.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(out.as_slice(), j.as_slice());
        let stats = robust.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn nan_field_is_caught_and_retried() {
        let (_, eps, j) = fixtures();
        let faulty = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new().fail_at(0, InjectedFault::NonFinite),
        );
        let robust = RobustSolver::new(faulty, RetryPolicy::default());
        let out = robust.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(out.as_slice(), j.as_slice());
        let stats = robust.stats();
        assert_eq!(stats.nonfinite, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recovered, 1);
    }

    #[test]
    fn validation_can_be_disabled() {
        let (_, eps, j) = fixtures();
        let faulty = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new().fail_at(0, InjectedFault::NonFinite),
        );
        let robust = RobustSolver::new(
            faulty,
            RetryPolicy {
                validate_output: false,
                ..RetryPolicy::default()
            },
        );
        // With validation off the NaN field sails through (the hazard the
        // default guards against).
        let out = robust.solve_ez(&eps, &j, 1.0).unwrap();
        assert!(out.as_slice().iter().any(|z| z.re.is_nan()));
        assert_eq!(robust.stats().nonfinite, 0);
    }

    #[test]
    fn slow_converge_recovers_under_relaxation() {
        let (_, eps, j) = fixtures();
        // Fails at tight tolerance on every call; succeeds once relaxed ≥10×.
        let faulty = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new().always(InjectedFault::SlowConverge { min_relax: 10.0 }),
        );
        let robust = RobustSolver::new(faulty, RetryPolicy::default());
        let out = robust.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(out.as_slice(), j.as_slice());
        let stats = robust.stats();
        assert_eq!(stats.retries, 1, "first relaxed retry (x10) must succeed");
        assert_eq!(stats.recovered, 1);
    }

    #[test]
    fn fallback_rescues_exhausted_primary() {
        let (_, eps, j) = fixtures();
        let faulty =
            FaultInjectingSolver::new(EchoSolver, FaultPlan::new().always(InjectedFault::Error));
        let robust =
            RobustSolver::new(faulty, RetryPolicy::default()).with_fallback(Box::new(EchoSolver));
        let out = robust.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(out.as_slice(), j.as_slice());
        let stats = robust.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.unrecovered, 0);
        assert_eq!(robust.name(), "robust(fault(echo)->echo)");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let (_, eps, _) = fixtures();
        let j_bad = ComplexField2d::zeros(Grid2d::new(3, 3, 0.1));
        struct Mismatch;
        impl FieldSolver for Mismatch {
            fn solve_ez(
                &self,
                eps_r: &RealField2d,
                source: &ComplexField2d,
                _omega: f64,
            ) -> Result<ComplexField2d, SolveFieldError> {
                if eps_r.grid() != source.grid() {
                    return Err(SolveFieldError::GridMismatch {
                        detail: "test".into(),
                    });
                }
                Ok(source.clone())
            }
        }
        let robust =
            RobustSolver::new(Mismatch, RetryPolicy::default()).with_fallback(Box::new(EchoSolver));
        let err = robust.solve_ez(&eps, &j_bad, 1.0).unwrap_err();
        assert!(matches!(err, SolveFieldError::GridMismatch { .. }));
        let stats = robust.stats();
        assert_eq!(stats.retries, 0, "GridMismatch must not be retried");
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.unrecovered, 1);
    }

    #[test]
    fn everything_failing_reports_last_error() {
        let (_, eps, j) = fixtures();
        let faulty =
            FaultInjectingSolver::new(EchoSolver, FaultPlan::new().always(InjectedFault::Error));
        let fallback =
            FaultInjectingSolver::new(EchoSolver, FaultPlan::new().always(InjectedFault::Error));
        let robust =
            RobustSolver::new(faulty, RetryPolicy::default()).with_fallback(Box::new(fallback));
        let err = robust.solve_ez(&eps, &j, 1.0).unwrap_err();
        assert!(matches!(err, SolveFieldError::Numerical { .. }));
        let stats = robust.stats();
        assert_eq!(stats.unrecovered, 1);
        assert_eq!(stats.recovered, 0);
    }

    #[test]
    fn batch_recovers_only_the_failed_request() {
        let (_, eps, j) = fixtures();
        // Call 1 (the second request's first attempt) fails; the retry
        // (call 2) succeeds. Requests 0 and 2 never see a failure.
        let faulty = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new().fail_at(1, InjectedFault::Error),
        );
        let robust = RobustSolver::new(faulty, RetryPolicy::default());
        let requests = [
            SolveRequest::forward(&j, 1.0),
            SolveRequest::forward(&j, 1.0),
            SolveRequest::adjoint(&j, 1.0),
        ];
        let out = robust.solve_ez_batch(&eps, &requests);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Result::is_ok));
        let stats = robust.stats();
        assert_eq!(stats.retries, 1, "only the injected failure retries");
        assert_eq!(stats.recovered, 1);
    }

    #[test]
    fn batch_quarantines_an_unrecoverable_request() {
        let (_, eps, j) = fixtures();
        // The batch's first attempts are calls 0..=2; the second request's
        // retries run after the whole batch, as calls 3 and 4. Failing 1, 3
        // and 4 keeps it failed while its neighbors pass untouched.
        let faulty = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new()
                .fail_at(1, InjectedFault::Error)
                .fail_at(3, InjectedFault::Error)
                .fail_at(4, InjectedFault::Error),
        );
        let robust = RobustSolver::new(faulty, RetryPolicy::default());
        let requests = [
            SolveRequest::forward(&j, 1.0),
            SolveRequest::forward(&j, 1.0),
            SolveRequest::forward(&j, 1.0),
        ];
        let out = robust.solve_ez_batch(&eps, &requests);
        assert!(out[0].is_ok());
        assert!(out[1].is_err(), "the poisoned request stays quarantined");
        assert!(out[2].is_ok());
        let stats = robust.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.unrecovered, 1);
    }

    #[test]
    fn expired_deadline_short_circuits_before_the_first_attempt() {
        let (_, eps, j) = fixtures();
        let robust = RobustSolver::new(EchoSolver, RetryPolicy::default());
        let err = robust
            .solve_ez_by(&eps, &j, 1.0, Some(Instant::now()))
            .unwrap_err();
        assert!(matches!(err, SolveFieldError::DeadlineExceeded { .. }));
        assert_eq!(robust.stats().deadlined, 1);
        assert_eq!(robust.stats().retries, 0);
    }

    #[test]
    fn deadline_cuts_a_retry_sequence_short() {
        let (_, eps, j) = fixtures();
        /// Fails after sleeping long enough to guarantee the deadline has
        /// passed by the time the retry loop re-checks it.
        struct SleepyFail;
        impl FieldSolver for SleepyFail {
            fn solve_ez(
                &self,
                _eps_r: &RealField2d,
                _source: &ComplexField2d,
                _omega: f64,
            ) -> Result<ComplexField2d, SolveFieldError> {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Err(SolveFieldError::Numerical {
                    detail: "injected".into(),
                })
            }
        }
        let robust = RobustSolver::new(SleepyFail, RetryPolicy::default())
            .with_fallback(Box::new(EchoSolver));
        let deadline = Instant::now() + std::time::Duration::from_millis(5);
        let err = robust
            .solve_ez_by(&eps, &j, 1.0, Some(deadline))
            .unwrap_err();
        assert!(matches!(err, SolveFieldError::DeadlineExceeded { .. }));
        let stats = robust.stats();
        assert_eq!(stats.deadlined, 1);
        assert_eq!(stats.retries, 0, "no retry may start past the deadline");
        assert_eq!(stats.fallbacks, 0, "the fallback is past-deadline too");
    }

    #[test]
    fn no_deadline_means_no_deadline_accounting() {
        let (_, eps, j) = fixtures();
        let robust = RobustSolver::new(EchoSolver, RetryPolicy::default());
        robust.solve_ez_by(&eps, &j, 1.0, None).unwrap();
        robust.solve_adjoint_ez_by(&eps, &j, 1.0, None).unwrap();
        assert_eq!(robust.stats().deadlined, 0);
    }

    #[test]
    fn retry_policy_env_parsing() {
        // from_env falls back to defaults when the knobs are unset; the
        // factor schedule relaxes then caps.
        let p = RetryPolicy::default();
        assert_eq!(p.factor_for_attempt(1), 10.0);
        assert_eq!(p.factor_for_attempt(2), 100.0);
        assert_eq!(p.factor_for_attempt(5), 1e3, "capped at max_relax");
    }
}
