//! Uniform 2-D simulation grids.

use serde::{Deserialize, Serialize};

/// A uniform 2-D grid over the rectangle `[0, nx·dl] × [0, ny·dl]`.
///
/// Grid cells are indexed `(ix, iy)` with `ix ∈ [0, nx)` horizontal
/// (propagation axis for most devices) and `iy ∈ [0, ny)` vertical. Fields
/// are stored row-major by `iy`, i.e. linear index `iy·nx + ix`.
///
/// ```
/// use maps_core::Grid2d;
/// let g = Grid2d::new(100, 60, 0.05);
/// assert_eq!(g.len(), 6000);
/// assert!((g.width() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid2d {
    /// Number of cells along x.
    pub nx: usize,
    /// Number of cells along y.
    pub ny: usize,
    /// Cell size in micrometres.
    pub dl: f64,
}

impl Grid2d {
    /// Creates a grid with `nx × ny` cells of size `dl` (µm).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `dl` is not a positive finite
    /// number.
    pub fn new(nx: usize, ny: usize, dl: f64) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(dl.is_finite() && dl > 0.0, "grid spacing must be positive");
        Grid2d { nx, ny, dl }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Returns `true` when the grid contains no cells (never, by
    /// construction, but included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical width `nx · dl` in µm.
    pub fn width(&self) -> f64 {
        self.nx as f64 * self.dl
    }

    /// Physical height `ny · dl` in µm.
    pub fn height(&self) -> f64 {
        self.ny as f64 * self.dl
    }

    /// Linear index of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the indices are out of range.
    #[inline]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny, "grid index out of range");
        iy * self.nx + ix
    }

    /// Cell-centre coordinate of `(ix, iy)` in µm.
    #[inline]
    pub fn coord(&self, ix: usize, iy: usize) -> (f64, f64) {
        ((ix as f64 + 0.5) * self.dl, (iy as f64 + 0.5) * self.dl)
    }

    /// Nearest cell to a physical coordinate, clamped into range.
    pub fn cell_at(&self, x: f64, y: f64) -> (usize, usize) {
        let ix = ((x / self.dl).floor().max(0.0) as usize).min(self.nx - 1);
        let iy = ((y / self.dl).floor().max(0.0) as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// A grid covering the same physical area with cells `factor`× coarser.
    ///
    /// Used by the multi-fidelity data generation: low-fidelity samples are
    /// simulated on `self.coarsen(2)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or does not divide both dimensions.
    pub fn coarsen(&self, factor: usize) -> Grid2d {
        assert!(factor > 0, "coarsening factor must be positive");
        assert!(
            self.nx.is_multiple_of(factor) && self.ny.is_multiple_of(factor),
            "coarsening factor {factor} must divide grid dims {}x{}",
            self.nx,
            self.ny
        );
        Grid2d::new(self.nx / factor, self.ny / factor, self.dl * factor as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let g = Grid2d::new(7, 5, 0.1);
        let mut seen = vec![false; g.len()];
        for iy in 0..5 {
            for ix in 0..7 {
                let k = g.idx(ix, iy);
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn coord_and_cell_at_are_inverse() {
        let g = Grid2d::new(20, 10, 0.25);
        let (x, y) = g.coord(13, 7);
        assert_eq!(g.cell_at(x, y), (13, 7));
    }

    #[test]
    fn cell_at_clamps() {
        let g = Grid2d::new(4, 4, 1.0);
        assert_eq!(g.cell_at(-3.0, 100.0), (0, 3));
    }

    #[test]
    fn coarsen_preserves_extent() {
        let g = Grid2d::new(64, 32, 0.05);
        let c = g.coarsen(2);
        assert_eq!(c.nx, 32);
        assert!((c.width() - g.width()).abs() < 1e-12);
        assert!((c.height() - g.height()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn coarsen_rejects_nondivisor() {
        Grid2d::new(10, 10, 0.1).coarsen(3);
    }
}
