//! # maps-core
//!
//! Shared vocabulary of the MAPS infrastructure: grids, scalar fields,
//! geometric primitives, ports, rich dataset labels, and the [`FieldSolver`]
//! abstraction that lets MAPS-InvDes run on either the exact FDFD solver or
//! a trained neural surrogate.
//!
//! Units are normalized: lengths in micrometres, `c = ε₀ = μ₀ = 1`, so the
//! angular frequency for a vacuum wavelength `λ` (µm) is `ω = 2π/λ` (see
//! [`omega_for_wavelength`]).
//!
//! ```
//! use maps_core::{Grid2d, RealField2d};
//!
//! let grid = Grid2d::new(120, 80, 0.05);
//! let silicon = maps_core::materials::SILICON_EPS;
//! let eps = RealField2d::constant(grid, silicon);
//! assert_eq!(eps.grid().len(), 120 * 80);
//! ```

pub mod fault;
pub mod field;
pub mod geometry;
pub mod grid;
pub mod instrument;
pub mod label;
pub mod port;
pub mod resilience;
pub mod solver;

pub use fault::{FaultInjectingSolver, FaultPlan, InjectedFault};
pub use field::{ComplexField2d, EmFields, RealField2d};
pub use geometry::{paint, Axis, Direction, Rect, Shape};
pub use grid::Grid2d;
pub use instrument::InstrumentedSolver;
pub use label::{Fidelity, PortRecord, RichLabels, Sample};
pub use port::Port;
pub use resilience::{RetryPolicy, RobustSolver, RobustStats};
pub use solver::{ensure_finite, FieldSolver, SolveFieldError, SolveKind, SolveRequest};

/// Angular frequency for a vacuum wavelength in µm (normalized `c = 1`).
///
/// # Panics
///
/// Panics if `wavelength` is not a positive finite number.
pub fn omega_for_wavelength(wavelength: f64) -> f64 {
    assert!(
        wavelength.is_finite() && wavelength > 0.0,
        "wavelength must be positive"
    );
    2.0 * std::f64::consts::PI / wavelength
}

/// Common material constants.
pub mod materials {
    /// Relative permittivity of silicon near 1550 nm (n ≈ 3.48).
    pub const SILICON_EPS: f64 = 12.11;
    /// Relative permittivity of silica cladding (n ≈ 1.44).
    pub const SILICA_EPS: f64 = 2.07;
    /// Vacuum / air.
    pub const AIR_EPS: f64 = 1.0;
    /// Thermo-optic coefficient of silicon, dn/dT (per kelvin).
    pub const SILICON_DN_DT: f64 = 1.8e-4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_of_1550nm() {
        let w = omega_for_wavelength(1.55);
        assert!((w - 2.0 * std::f64::consts::PI / 1.55).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn omega_rejects_zero() {
        omega_for_wavelength(0.0);
    }

    #[test]
    fn silicon_index_squares_to_eps() {
        let n = materials::SILICON_EPS.sqrt();
        assert!((n - 3.48).abs() < 0.01);
    }
}
