//! Deterministic fault injection for testing recovery paths.
//!
//! [`FaultInjectingSolver`] wraps any [`FieldSolver`] and fails on a
//! [`FaultPlan`] schedule keyed by *call index* (every forward or adjoint
//! attempt consumes one index, retries included), so every recovery path —
//! retry, tolerance relaxation, fallback, quarantine, optimizer-level
//! revert — is testable without contriving ill-conditioned physics.
//!
//! The double is deliberately part of the library (not `#[cfg(test)]`): the
//! integration suites of `maps-invdes` and `maps-data` and the CI smoke run
//! drive whole pipelines through it.

use crate::field::{ComplexField2d, RealField2d};
use crate::solver::{FieldSolver, SolveFieldError};
use maps_linalg::Complex64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What an injected failure looks like to the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// A hard [`SolveFieldError::Numerical`] error.
    Error,
    /// A successfully-returned field containing one NaN cell — the silent
    /// failure mode that output validation must catch.
    NonFinite,
    /// Emulates a slow-converging iterative solve: fails unless the call
    /// arrives through a relaxed entry point with `tol_factor >= min_relax`.
    SlowConverge {
        /// Minimum tolerance relaxation at which the solve "converges".
        min_relax: f64,
    },
}

/// A deterministic failure schedule keyed by call index (0-based).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    at: BTreeMap<usize, InjectedFault>,
    every: Option<(usize, InjectedFault)>,
    always: Option<InjectedFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Injects `fault` on call `index`.
    pub fn fail_at(mut self, index: usize, fault: InjectedFault) -> Self {
        self.at.insert(index, fault);
        self
    }

    /// Injects `fault` on every call whose index is a multiple of `period`
    /// (a 1-in-`period` failure rate starting at call 0).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn fail_every(mut self, period: usize, fault: InjectedFault) -> Self {
        assert!(period > 0, "period must be positive");
        self.every = Some((period, fault));
        self
    }

    /// Injects `fault` on every call (explicit `fail_at` entries win).
    pub fn always(mut self, fault: InjectedFault) -> Self {
        self.always = Some(fault);
        self
    }

    /// The fault scheduled for a call index, if any.
    pub fn fault_for(&self, index: usize) -> Option<InjectedFault> {
        if let Some(f) = self.at.get(&index) {
            return Some(*f);
        }
        if let Some((period, f)) = self.every {
            if index.is_multiple_of(period) {
                return Some(f);
            }
        }
        self.always
    }
}

/// A [`FieldSolver`] test double that fails on schedule.
pub struct FaultInjectingSolver<S: FieldSolver> {
    inner: S,
    plan: FaultPlan,
    label: String,
    calls: AtomicUsize,
    injected: AtomicUsize,
}

impl<S: FieldSolver> FaultInjectingSolver<S> {
    /// Wraps `inner` with a failure plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let label = format!("fault({})", inner.name());
        FaultInjectingSolver {
            inner,
            plan,
            label,
            calls: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// Overrides the solver name (useful to isolate per-test metric names).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.label = name.into();
        self
    }

    /// Total solve attempts seen (forward + adjoint, retries included).
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped solver.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes a call index; returns the fault to apply, if scheduled and
    /// not neutralized by the relaxation factor.
    fn next_fault(&self, tol_factor: f64) -> Option<InjectedFault> {
        let idx = self.calls.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.fault_for(idx)?;
        if let InjectedFault::SlowConverge { min_relax } = fault {
            if tol_factor >= min_relax {
                return None; // "converges" once sufficiently relaxed
            }
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    fn apply(
        &self,
        fault: InjectedFault,
        grid: crate::grid::Grid2d,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        match fault {
            InjectedFault::Error => Err(SolveFieldError::Numerical {
                detail: format!("injected failure (call {})", self.calls() - 1),
            }),
            InjectedFault::NonFinite => {
                let mut f = ComplexField2d::zeros(grid);
                f.set(0, 0, Complex64::new(f64::NAN, 0.0));
                Ok(f)
            }
            InjectedFault::SlowConverge { min_relax } => Err(SolveFieldError::Numerical {
                detail: format!(
                    "injected slow convergence: needs tolerance x{min_relax}, got x{tol_factor}"
                ),
            }),
        }
    }
}

impl<S: FieldSolver> FieldSolver for FaultInjectingSolver<S> {
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        match self.next_fault(1.0) {
            Some(fault) => self.apply(fault, eps_r.grid(), 1.0),
            None => self.inner.solve_ez(eps_r, source, omega),
        }
    }

    fn solve_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        match self.next_fault(tol_factor) {
            Some(fault) => self.apply(fault, eps_r.grid(), tol_factor),
            None => self
                .inner
                .solve_ez_relaxed(eps_r, source, omega, tol_factor),
        }
    }

    fn solve_adjoint_ez(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        match self.next_fault(1.0) {
            Some(fault) => self.apply(fault, eps_r.grid(), 1.0),
            None => self.inner.solve_adjoint_ez(eps_r, rhs, omega),
        }
    }

    fn solve_adjoint_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        match self.next_fault(tol_factor) {
            Some(fault) => self.apply(fault, eps_r.grid(), tol_factor),
            None => self
                .inner
                .solve_adjoint_ez_relaxed(eps_r, rhs, omega, tol_factor),
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;

    struct EchoSolver;

    impl FieldSolver for EchoSolver {
        fn solve_ez(
            &self,
            _eps_r: &RealField2d,
            source: &ComplexField2d,
            _omega: f64,
        ) -> Result<ComplexField2d, SolveFieldError> {
            Ok(source.clone())
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn schedule_is_deterministic_by_call_index() {
        let g = Grid2d::new(3, 3, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let j = ComplexField2d::zeros(g);
        let s = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new()
                .fail_at(1, InjectedFault::Error)
                .fail_at(3, InjectedFault::NonFinite),
        );
        assert!(s.solve_ez(&eps, &j, 1.0).is_ok()); // call 0
        assert!(s.solve_ez(&eps, &j, 1.0).is_err()); // call 1: Error
        assert!(s.solve_adjoint_ez(&eps, &j, 1.0).is_ok()); // call 2
        let f = s.solve_ez(&eps, &j, 1.0).unwrap(); // call 3: NaN field
        assert!(f.get(0, 0).re.is_nan());
        assert_eq!(s.calls(), 4);
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn periodic_plan_hits_every_nth_call() {
        let g = Grid2d::new(2, 2, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let j = ComplexField2d::zeros(g);
        let s = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new().fail_every(5, InjectedFault::Error),
        );
        let failures = (0..20)
            .filter(|_| s.solve_ez(&eps, &j, 1.0).is_err())
            .count();
        assert_eq!(failures, 4, "calls 0, 5, 10, 15");
        assert_eq!(s.injected(), 4);
    }

    #[test]
    fn slow_converge_yields_to_relaxation() {
        let g = Grid2d::new(2, 2, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let j = ComplexField2d::zeros(g);
        let s = FaultInjectingSolver::new(
            EchoSolver,
            FaultPlan::new().always(InjectedFault::SlowConverge { min_relax: 50.0 }),
        );
        assert!(s.solve_ez(&eps, &j, 1.0).is_err());
        assert!(s.solve_ez_relaxed(&eps, &j, 1.0, 10.0).is_err());
        assert!(s.solve_ez_relaxed(&eps, &j, 1.0, 100.0).is_ok());
        assert_eq!(s.injected(), 2);
    }
}
