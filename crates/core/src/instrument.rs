//! Telemetry wrapper for any [`FieldSolver`].
//!
//! [`InstrumentedSolver`] is field-transparent — it forwards `solve_ez` /
//! `solve_adjoint_ez` untouched, so wrapped and unwrapped solvers return
//! bit-identical fields — while publishing per-solver metrics to the
//! [`maps_obs::global`] registry:
//!
//! - `solver.<name>.solves` / `solver.<name>.adjoint_solves` — call counters
//! - `solver.<name>.failures` — error counter (both directions)
//! - `solver.<name>.solve_seconds` / `solver.<name>.adjoint_seconds` —
//!   latency histograms with p50/p90/p99
//!
//! where `<name>` is the wrapped solver's [`FieldSolver::name`]. Each call
//! also opens a `solver.solve` span, so `MAPS_LOG=debug` shows solve timings
//! nested inside whatever pipeline invoked them.

use crate::field::{ComplexField2d, RealField2d};
use crate::solver::{FieldSolver, SolveFieldError, SolveKind, SolveRequest};

/// Wraps a [`FieldSolver`], counting calls and timing solves.
pub struct InstrumentedSolver<S: FieldSolver> {
    inner: S,
    label: String,
    solves: maps_obs::Counter,
    adjoint_solves: maps_obs::Counter,
    failures: maps_obs::Counter,
    solve_seconds: maps_obs::Histogram,
    adjoint_seconds: maps_obs::Histogram,
}

impl<S: FieldSolver> InstrumentedSolver<S> {
    /// Wraps `inner`, registering its instruments in the global registry.
    pub fn new(inner: S) -> Self {
        let name = inner.name().to_string();
        let label = format!("instrumented({name})");
        InstrumentedSolver {
            solves: maps_obs::counter(&format!("solver.{name}.solves")),
            adjoint_solves: maps_obs::counter(&format!("solver.{name}.adjoint_solves")),
            failures: maps_obs::counter(&format!("solver.{name}.failures")),
            solve_seconds: maps_obs::histogram(&format!("solver.{name}.solve_seconds")),
            adjoint_seconds: maps_obs::histogram(&format!("solver.{name}.adjoint_seconds")),
            inner,
            label,
        }
    }

    /// The wrapped solver.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the inner solver.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: FieldSolver> FieldSolver for InstrumentedSolver<S> {
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let span = maps_obs::span("solver.solve")
            .field("solver", self.inner.name())
            .field("cells", eps_r.grid().len());
        let result = self.inner.solve_ez(eps_r, source, omega);
        self.solve_seconds.record(span.elapsed().as_secs_f64());
        match &result {
            Ok(_) => self.solves.inc(),
            Err(_) => self.failures.inc(),
        }
        result
    }

    fn solve_adjoint_ez(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let span = maps_obs::span("solver.adjoint_solve")
            .field("solver", self.inner.name())
            .field("cells", eps_r.grid().len());
        let result = self.inner.solve_adjoint_ez(eps_r, rhs, omega);
        self.adjoint_seconds.record(span.elapsed().as_secs_f64());
        match &result {
            Ok(_) => self.adjoint_solves.inc(),
            Err(_) => self.failures.inc(),
        }
        result
    }

    fn solve_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let span = maps_obs::span("solver.solve")
            .field("solver", self.inner.name())
            .field("cells", eps_r.grid().len())
            .field("tol_factor", format!("{tol_factor:.0}"));
        let result = self
            .inner
            .solve_ez_relaxed(eps_r, source, omega, tol_factor);
        self.solve_seconds.record(span.elapsed().as_secs_f64());
        match &result {
            Ok(_) => self.solves.inc(),
            Err(_) => self.failures.inc(),
        }
        result
    }

    fn solve_adjoint_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let span = maps_obs::span("solver.adjoint_solve")
            .field("solver", self.inner.name())
            .field("cells", eps_r.grid().len())
            .field("tol_factor", format!("{tol_factor:.0}"));
        let result = self
            .inner
            .solve_adjoint_ez_relaxed(eps_r, rhs, omega, tol_factor);
        self.adjoint_seconds.record(span.elapsed().as_secs_f64());
        match &result {
            Ok(_) => self.adjoint_solves.inc(),
            Err(_) => self.failures.inc(),
        }
        result
    }

    /// Forwards the whole batch to the inner solver (keeping its grouping
    /// and factorization amortization intact) under a `solver.solve_batch`
    /// span, then books each request into the same per-direction counters
    /// the scalar paths use.
    fn solve_ez_batch(
        &self,
        eps_r: &RealField2d,
        requests: &[SolveRequest<'_>],
    ) -> Vec<Result<ComplexField2d, SolveFieldError>> {
        let forward_count = requests
            .iter()
            .filter(|r| r.kind == SolveKind::Forward)
            .count();
        // Batches may run concurrently from worker threads; the thread id and
        // a process-wide batch sequence number make interleaved batches
        // distinguishable in an exported trace.
        static BATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let span = maps_obs::span("solver.solve_batch")
            .field("solver", self.inner.name())
            .field("cells", eps_r.grid().len())
            .field("requests", requests.len())
            .field("forward", forward_count)
            .field("adjoint", requests.len() - forward_count)
            .field("thread", maps_obs::current_thread_id())
            .field(
                "batch",
                BATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            );
        let results = self.inner.solve_ez_batch(eps_r, requests);
        let elapsed = span.elapsed().as_secs_f64();
        if !requests.is_empty() {
            let per_request = elapsed / requests.len() as f64;
            for (req, result) in requests.iter().zip(&results) {
                match req.kind {
                    SolveKind::Forward => self.solve_seconds.record(per_request),
                    SolveKind::Adjoint => self.adjoint_seconds.record(per_request),
                }
                match (result, req.kind) {
                    (Ok(_), SolveKind::Forward) => self.solves.inc(),
                    (Ok(_), SolveKind::Adjoint) => self.adjoint_solves.inc(),
                    (Err(_), _) => self.failures.inc(),
                }
            }
        }
        results
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;
    use maps_linalg::Complex64;

    struct EchoSolver;

    impl FieldSolver for EchoSolver {
        fn solve_ez(
            &self,
            _eps_r: &RealField2d,
            source: &ComplexField2d,
            _omega: f64,
        ) -> Result<ComplexField2d, SolveFieldError> {
            Ok(source.clone())
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn wrapper_is_field_transparent_and_counts() {
        let g = Grid2d::new(4, 4, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let mut j = ComplexField2d::zeros(g);
        j.set(1, 2, Complex64::new(0.3, -0.7));
        let plain = EchoSolver.solve_ez(&eps, &j, 1.0).unwrap();

        let wrapped = InstrumentedSolver::new(EchoSolver);
        let before = wrapped.solves.get();
        let observed = wrapped.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(
            observed.as_slice(),
            plain.as_slice(),
            "fields must be bit-identical"
        );
        assert_eq!(wrapped.solves.get(), before + 1);
        assert_eq!(wrapped.name(), "instrumented(echo)");
    }

    #[test]
    fn batch_counts_each_request_by_direction() {
        let g = Grid2d::new(4, 4, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let mut j = ComplexField2d::zeros(g);
        j.set(2, 2, Complex64::ONE);
        let wrapped = InstrumentedSolver::new(EchoSolver);
        let (solves0, adjoint0) = (wrapped.solves.get(), wrapped.adjoint_solves.get());
        let requests = [
            SolveRequest::forward(&j, 1.0),
            SolveRequest::forward(&j, 1.0),
            SolveRequest::adjoint(&j, 1.0),
        ];
        let out = wrapped.solve_ez_batch(&eps, &requests);
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(wrapped.solves.get(), solves0 + 2);
        assert_eq!(wrapped.adjoint_solves.get(), adjoint0 + 1);
    }
}
