//! Geometric primitives used to rasterize device layouts onto a grid.

use crate::field::RealField2d;
use crate::grid::Grid2d;
use serde::{Deserialize, Serialize};

/// An axis of the 2-D simulation plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Horizontal axis.
    X,
    /// Vertical axis.
    Y,
}

/// Propagation direction along an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards increasing coordinate.
    Positive,
    /// Towards decreasing coordinate.
    Negative,
}

impl Direction {
    /// Sign of the direction: `+1.0` or `−1.0`.
    pub fn sign(self) -> f64 {
        match self {
            Direction::Positive => 1.0,
            Direction::Negative => -1.0,
        }
    }
}

/// An axis-aligned rectangle in physical coordinates (µm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left x.
    pub x0: f64,
    /// Lower-left y.
    pub y0: f64,
    /// Upper-right x.
    pub x1: f64,
    /// Upper-right y.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing the order.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from centre and size.
    pub fn centered(cx: f64, cy: f64, width: f64, height: f64) -> Self {
        Rect::new(
            cx - width / 2.0,
            cy - height / 2.0,
            cx + width / 2.0,
            cy + height / 2.0,
        )
    }

    /// Returns `true` when `(x, y)` lies inside (inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Rectangle width.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Rectangle height.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Centre point.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// The cell-index bounding box `(ix0..ix1, iy0..iy1)` (exclusive upper
    /// bounds) covering this rectangle on a grid.
    pub fn cell_range(&self, grid: Grid2d) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let ix0 = ((self.x0 / grid.dl).floor().max(0.0)) as usize;
        let iy0 = ((self.y0 / grid.dl).floor().max(0.0)) as usize;
        let ix1 = ((self.x1 / grid.dl).ceil() as usize).min(grid.nx);
        let iy1 = ((self.y1 / grid.dl).ceil() as usize).min(grid.ny);
        (ix0..ix1, iy0..iy1)
    }
}

/// A shape that can be rasterized onto a permittivity map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Axis-aligned rectangle.
    Rect(Rect),
    /// Circle with centre `(cx, cy)` and radius `r`.
    Circle {
        /// Centre x (µm).
        cx: f64,
        /// Centre y (µm).
        cy: f64,
        /// Radius (µm).
        r: f64,
    },
}

impl Shape {
    /// Returns `true` when `(x, y)` lies inside the shape.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        match *self {
            Shape::Rect(r) => r.contains(x, y),
            Shape::Circle { cx, cy, r } => {
                let dx = x - cx;
                let dy = y - cy;
                dx * dx + dy * dy <= r * r
            }
        }
    }
}

/// Paints `value` into `field` wherever the shape covers a cell centre.
pub fn paint(field: &mut RealField2d, shape: &Shape, value: f64) {
    let grid = field.grid();
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let (x, y) = grid.coord(ix, iy);
            if shape.contains(x, y) {
                field.set(ix, iy, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(2.0, 3.0, 0.0, 1.0);
        assert_eq!(r.x0, 0.0);
        assert_eq!(r.y1, 3.0);
        assert_eq!(r.width(), 2.0);
    }

    #[test]
    fn centered_rect_contains_center() {
        let r = Rect::centered(1.0, 1.0, 0.5, 0.5);
        assert!(r.contains(1.0, 1.0));
        assert!(!r.contains(1.3, 1.0));
    }

    #[test]
    fn circle_membership() {
        let c = Shape::Circle {
            cx: 0.0,
            cy: 0.0,
            r: 1.0,
        };
        assert!(c.contains(0.5, 0.5));
        assert!(!c.contains(0.8, 0.8));
    }

    #[test]
    fn paint_covers_expected_cells() {
        let g = Grid2d::new(10, 10, 0.1);
        let mut f = RealField2d::constant(g, 1.0);
        paint(&mut f, &Shape::Rect(Rect::new(0.0, 0.0, 0.5, 1.0)), 12.0);
        // left half painted
        assert_eq!(f.get(2, 5), 12.0);
        assert_eq!(f.get(7, 5), 1.0);
    }

    #[test]
    fn cell_range_clamps_to_grid() {
        let g = Grid2d::new(10, 10, 0.1);
        let r = Rect::new(-1.0, 0.35, 5.0, 0.62);
        let (xs, ys) = r.cell_range(g);
        assert_eq!(xs, 0..10);
        assert_eq!(ys, 3..7);
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Positive.sign(), 1.0);
        assert_eq!(Direction::Negative.sign(), -1.0);
    }
}
