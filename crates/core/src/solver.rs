//! The solver abstraction shared by numerical and neural field solvers.
//!
//! MAPS-InvDes drives inverse design through this trait, so swapping the
//! exact FDFD solver for a trained neural operator (the paper's final case
//! study, Fig. 6) is a one-line change at the call site.

use crate::field::{ComplexField2d, RealField2d};
use std::fmt;

/// A frequency-domain field solver for the 2-D `Ez` polarization.
///
/// Given a relative-permittivity map, a current-density source `Jz`, and the
/// angular frequency, the solver returns the complex `Ez` phasor on the same
/// grid. Implementors include the exact FDFD solver (`maps-fdfd`) and the
/// neural surrogate (`maps-train::NeuralFieldSolver`).
pub trait FieldSolver {
    /// Solves for the `Ez` field phasor.
    ///
    /// # Errors
    ///
    /// Returns [`SolveFieldError`] when the underlying linear system cannot
    /// be solved or the inputs are inconsistent.
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError>;

    /// Solves the adjoint system `Aᵀ·e_adj = rhs` for a given adjoint
    /// right-hand side (`∂F/∂e` of a power objective).
    ///
    /// The default implementation exploits electromagnetic reciprocity:
    /// away from the PML the FDFD operator is complex symmetric, so the
    /// adjoint field is obtained by a *forward* solve with the equivalent
    /// current `J_adj = i·rhs/ω` (since the forward RHS is `−iω·J`). Exact
    /// solvers override this with a true transpose solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolveFieldError`] under the same conditions as
    /// [`FieldSolver::solve_ez`].
    fn solve_adjoint_ez(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let grid = rhs.grid();
        let scale = maps_linalg::Complex64::new(0.0, 1.0 / omega);
        let j = ComplexField2d::from_vec(
            grid,
            rhs.as_slice().iter().map(|r| *r * scale).collect(),
        );
        self.solve_ez(eps_r, &j, omega)
    }

    /// Short human-readable name used in logs and benchmark tables.
    fn name(&self) -> &str {
        "field-solver"
    }
}

/// Error raised by a [`FieldSolver`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveFieldError {
    /// The permittivity and source grids disagree.
    GridMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// The linear system could not be solved.
    Numerical {
        /// Description from the numerical backend.
        detail: String,
    },
    /// An input parameter is invalid (e.g. non-positive frequency).
    InvalidInput {
        /// Description of the invalid parameter.
        detail: String,
    },
}

impl fmt::Display for SolveFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveFieldError::GridMismatch { detail } => write!(f, "grid mismatch: {detail}"),
            SolveFieldError::Numerical { detail } => write!(f, "numerical failure: {detail}"),
            SolveFieldError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
        }
    }
}

impl std::error::Error for SolveFieldError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;
    use maps_linalg::Complex64;

    /// A trivial solver used to prove the trait is object safe.
    struct ZeroSolver;

    impl FieldSolver for ZeroSolver {
        fn solve_ez(
            &self,
            eps_r: &RealField2d,
            _source: &ComplexField2d,
            _omega: f64,
        ) -> Result<ComplexField2d, SolveFieldError> {
            Ok(ComplexField2d::zeros(eps_r.grid()))
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let s: Box<dyn FieldSolver> = Box::new(ZeroSolver);
        let g = Grid2d::new(2, 2, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let j = ComplexField2d::zeros(g);
        let e = s.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(e.get(0, 0), Complex64::ZERO);
        assert_eq!(s.name(), "field-solver");
    }

    #[test]
    fn error_display() {
        let e = SolveFieldError::InvalidInput {
            detail: "omega must be positive".into(),
        };
        assert!(e.to_string().contains("omega"));
    }
}
