//! The solver abstraction shared by numerical and neural field solvers.
//!
//! MAPS-InvDes drives inverse design through this trait, so swapping the
//! exact FDFD solver for a trained neural operator (the paper's final case
//! study, Fig. 6) is a one-line change at the call site.

use crate::field::{ComplexField2d, RealField2d};
use std::fmt;

/// Which linear system a [`SolveRequest`] targets.
///
/// Forward requests solve `A·e = −iω·J` for a current density `J`; adjoint
/// requests solve `Aᵀ·e_adj = rhs` for an objective sensitivity `∂F/∂e`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveKind {
    /// Forward solve: the request's field is the current density `Jz`.
    Forward,
    /// Adjoint solve: the request's field is the adjoint right-hand side.
    Adjoint,
}

/// One excitation in a batched solve: a source (or adjoint RHS), its angular
/// frequency, and the direction of the solve.
///
/// Requests borrow their source fields so batching N excitations costs no
/// clones; batches are short-lived views assembled at the call site.
#[derive(Debug, Clone, Copy)]
pub struct SolveRequest<'a> {
    /// Current density `Jz` ([`SolveKind::Forward`]) or adjoint right-hand
    /// side `∂F/∂e` ([`SolveKind::Adjoint`]).
    pub source: &'a ComplexField2d,
    /// Angular frequency of the excitation.
    pub omega: f64,
    /// Forward or adjoint system.
    pub kind: SolveKind,
}

impl<'a> SolveRequest<'a> {
    /// A forward request for the current density `source` at `omega`.
    pub fn forward(source: &'a ComplexField2d, omega: f64) -> Self {
        SolveRequest {
            source,
            omega,
            kind: SolveKind::Forward,
        }
    }

    /// An adjoint request for the right-hand side `rhs` at `omega`.
    pub fn adjoint(rhs: &'a ComplexField2d, omega: f64) -> Self {
        SolveRequest {
            source: rhs,
            omega,
            kind: SolveKind::Adjoint,
        }
    }
}

/// A frequency-domain field solver for the 2-D `Ez` polarization.
///
/// Given a relative-permittivity map, a current-density source `Jz`, and the
/// angular frequency, the solver returns the complex `Ez` phasor on the same
/// grid. Implementors include the exact FDFD solver (`maps-fdfd`) and the
/// neural surrogate (`maps-train::NeuralFieldSolver`).
pub trait FieldSolver {
    /// Solves for the `Ez` field phasor.
    ///
    /// # Errors
    ///
    /// Returns [`SolveFieldError`] when the underlying linear system cannot
    /// be solved or the inputs are inconsistent.
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError>;

    /// Solves the adjoint system `Aᵀ·e_adj = rhs` for a given adjoint
    /// right-hand side (`∂F/∂e` of a power objective).
    ///
    /// The default implementation exploits electromagnetic reciprocity:
    /// away from the PML the FDFD operator is complex symmetric, so the
    /// adjoint field is obtained by a *forward* solve with the equivalent
    /// current `J_adj = i·rhs/ω` (since the forward RHS is `−iω·J`). Exact
    /// solvers override this with a true transpose solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolveFieldError`] under the same conditions as
    /// [`FieldSolver::solve_ez`].
    fn solve_adjoint_ez(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let grid = rhs.grid();
        let scale = maps_linalg::Complex64::new(0.0, 1.0 / omega);
        let j = ComplexField2d::from_vec(grid, rhs.as_slice().iter().map(|r| *r * scale).collect());
        self.solve_ez(eps_r, &j, omega)
    }

    /// Short human-readable name used in logs and benchmark tables.
    fn name(&self) -> &str {
        "field-solver"
    }

    /// Solves a batch of forward/adjoint excitations against one
    /// permittivity map, returning one result per request in input order.
    ///
    /// The default implementation dispatches each request sequentially
    /// through [`FieldSolver::solve_ez`] / [`FieldSolver::solve_adjoint_ez`],
    /// so every existing implementor (neural surrogates, third-party
    /// solvers) batches correctly with no changes. Direct solvers override
    /// this to group requests by frequency and amortize one factorization
    /// over all of a group's substitution sweeps; overrides must stay
    /// bit-identical to this sequential reference.
    ///
    /// Unlike the scalar entry points, a failed request does not abort the
    /// batch: each request carries its own `Result`, which is what gives
    /// callers per-request quarantine granularity.
    fn solve_ez_batch(
        &self,
        eps_r: &RealField2d,
        requests: &[SolveRequest<'_>],
    ) -> Vec<Result<ComplexField2d, SolveFieldError>> {
        requests
            .iter()
            .map(|req| match req.kind {
                SolveKind::Forward => self.solve_ez(eps_r, req.source, req.omega),
                SolveKind::Adjoint => self.solve_adjoint_ez(eps_r, req.source, req.omega),
            })
            .collect()
    }

    /// Solves one excitation across a spectrum of frequencies — the
    /// wideband workload (WDM transmission spectra, S-parameter sweeps):
    /// the same current density driven at every `omega`, one result per
    /// frequency in input order.
    ///
    /// The default implementation assembles forward [`SolveRequest`]s and
    /// routes them through [`FieldSolver::solve_ez_batch`], so direct
    /// solvers amortize factorization reuse and blocked substitution
    /// through their batch plane while implementors that only define
    /// `solve_ez` still sweep correctly. Like the batch entry point, a
    /// failed frequency fails only its own slot.
    fn solve_ez_spectrum(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omegas: &[f64],
    ) -> Vec<Result<ComplexField2d, SolveFieldError>> {
        let requests: Vec<SolveRequest<'_>> = omegas
            .iter()
            .map(|&omega| SolveRequest::forward(source, omega))
            .collect();
        self.solve_ez_batch(eps_r, &requests)
    }

    /// Solves `solve_ez` with the backend's convergence tolerance relaxed by
    /// `tol_factor` (> 1 loosens). Retry policies use this to rescue
    /// slow-converging iterative solves; the relaxation applies to this one
    /// call only and is never sticky.
    ///
    /// The default implementation ignores the factor — direct solvers and
    /// neural surrogates have no tolerance to relax.
    ///
    /// # Errors
    ///
    /// Returns [`SolveFieldError`] under the same conditions as
    /// [`FieldSolver::solve_ez`].
    fn solve_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let _ = tol_factor;
        self.solve_ez(eps_r, source, omega)
    }

    /// Solves `solve_adjoint_ez` with a relaxed tolerance (see
    /// [`FieldSolver::solve_ez_relaxed`]).
    ///
    /// # Errors
    ///
    /// Returns [`SolveFieldError`] under the same conditions as
    /// [`FieldSolver::solve_adjoint_ez`].
    fn solve_adjoint_ez_relaxed(
        &self,
        eps_r: &RealField2d,
        rhs: &ComplexField2d,
        omega: f64,
        tol_factor: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        let _ = tol_factor;
        self.solve_adjoint_ez(eps_r, rhs, omega)
    }
}

/// Checks every component of a solved field for NaN/∞ and converts a silent
/// numerical breakdown into [`SolveFieldError::NonFinite`].
///
/// `context` names the producing solver in the error detail.
///
/// # Errors
///
/// Returns [`SolveFieldError::NonFinite`] when any real or imaginary part is
/// not finite.
pub fn ensure_finite(field: &ComplexField2d, context: &str) -> Result<(), SolveFieldError> {
    for (idx, z) in field.as_slice().iter().enumerate() {
        if !(z.re.is_finite() && z.im.is_finite()) {
            let grid = field.grid();
            let (ix, iy) = (idx % grid.nx, idx / grid.nx);
            return Err(SolveFieldError::NonFinite {
                detail: format!(
                    "{context} produced a non-finite field value {:?} at cell ({ix}, {iy})",
                    (z.re, z.im)
                ),
            });
        }
    }
    Ok(())
}

/// Error raised by a [`FieldSolver`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveFieldError {
    /// The permittivity and source grids disagree.
    GridMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// The linear system could not be solved.
    Numerical {
        /// Description from the numerical backend.
        detail: String,
    },
    /// An input parameter is invalid (e.g. non-positive frequency).
    InvalidInput {
        /// Description of the invalid parameter.
        detail: String,
    },
    /// The solver returned a field containing NaN or ∞ components — a
    /// numerically silent failure mode that output validation converts
    /// into a hard error.
    NonFinite {
        /// Where the non-finite value appeared.
        detail: String,
    },
    /// The caller's deadline passed before a result could be produced.
    /// Raised by deadline-aware drivers (e.g. `RobustSolver::solve_ez_by`)
    /// between attempts; the solve is abandoned, never answered late.
    DeadlineExceeded {
        /// Which stage of the solve the deadline interrupted.
        detail: String,
    },
}

impl SolveFieldError {
    /// True when a retry (possibly with relaxed tolerance) or a fallback
    /// solver could plausibly succeed. Input inconsistencies
    /// ([`SolveFieldError::GridMismatch`], [`SolveFieldError::InvalidInput`])
    /// are permanent, and a passed deadline
    /// ([`SolveFieldError::DeadlineExceeded`]) only gets *more* passed;
    /// numerical breakdowns are worth another attempt.
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            SolveFieldError::GridMismatch { .. }
                | SolveFieldError::InvalidInput { .. }
                | SolveFieldError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for SolveFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveFieldError::GridMismatch { detail } => write!(f, "grid mismatch: {detail}"),
            SolveFieldError::Numerical { detail } => write!(f, "numerical failure: {detail}"),
            SolveFieldError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            SolveFieldError::NonFinite { detail } => write!(f, "non-finite output: {detail}"),
            SolveFieldError::DeadlineExceeded { detail } => {
                write!(f, "deadline exceeded: {detail}")
            }
        }
    }
}

impl std::error::Error for SolveFieldError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;
    use maps_linalg::Complex64;

    /// A trivial solver used to prove the trait is object safe.
    struct ZeroSolver;

    impl FieldSolver for ZeroSolver {
        fn solve_ez(
            &self,
            eps_r: &RealField2d,
            _source: &ComplexField2d,
            _omega: f64,
        ) -> Result<ComplexField2d, SolveFieldError> {
            Ok(ComplexField2d::zeros(eps_r.grid()))
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let s: Box<dyn FieldSolver> = Box::new(ZeroSolver);
        let g = Grid2d::new(2, 2, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let j = ComplexField2d::zeros(g);
        let e = s.solve_ez(&eps, &j, 1.0).unwrap();
        assert_eq!(e.get(0, 0), Complex64::ZERO);
        assert_eq!(s.name(), "field-solver");
        // The batched entry point must also be callable through the object.
        let batch = s.solve_ez_batch(&eps, &[SolveRequest::forward(&j, 1.0)]);
        assert_eq!(batch.len(), 1);
        assert!(batch[0].is_ok());
    }

    /// The default batch implementation is the sequential reference: each
    /// request routes to the matching scalar entry point in input order.
    #[test]
    fn default_batch_matches_scalar_calls() {
        let g = Grid2d::new(3, 3, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let mut j = ComplexField2d::zeros(g);
        j.set(1, 1, Complex64::ONE);
        let omega = 2.0;
        let requests = [
            SolveRequest::forward(&j, omega),
            SolveRequest::adjoint(&j, omega),
        ];
        let batch = ZeroSolver.solve_ez_batch(&eps, &requests);
        assert_eq!(batch.len(), 2);
        let fwd = ZeroSolver.solve_ez(&eps, &j, omega).unwrap();
        let adj = ZeroSolver.solve_adjoint_ez(&eps, &j, omega).unwrap();
        assert_eq!(batch[0].as_ref().unwrap().as_slice(), fwd.as_slice());
        assert_eq!(batch[1].as_ref().unwrap().as_slice(), adj.as_slice());
    }

    /// The default spectrum sweep is one forward solve per frequency, in
    /// input order, routed through the batch plane.
    #[test]
    fn default_spectrum_routes_through_batch() {
        let g = Grid2d::new(3, 3, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let mut j = ComplexField2d::zeros(g);
        j.set(1, 1, Complex64::ONE);
        let omegas = [1.0, 1.5, 2.0, 2.5];
        let sweep = ZeroSolver.solve_ez_spectrum(&eps, &j, &omegas);
        assert_eq!(sweep.len(), omegas.len());
        for (omega, result) in omegas.iter().zip(&sweep) {
            let direct = ZeroSolver.solve_ez(&eps, &j, *omega).unwrap();
            assert_eq!(result.as_ref().unwrap().as_slice(), direct.as_slice());
        }
        // An empty sweep is a no-op, not an error.
        assert!(ZeroSolver.solve_ez_spectrum(&eps, &j, &[]).is_empty());
    }

    #[test]
    fn error_display() {
        let e = SolveFieldError::InvalidInput {
            detail: "omega must be positive".into(),
        };
        assert!(e.to_string().contains("omega"));
    }

    #[test]
    fn ensure_finite_localizes_the_bad_cell() {
        let g = Grid2d::new(4, 3, 0.1);
        let mut f = ComplexField2d::zeros(g);
        assert!(ensure_finite(&f, "test").is_ok());
        f.set(2, 1, Complex64::new(f64::NAN, 0.0));
        let err = ensure_finite(&f, "test-solver").unwrap_err();
        match &err {
            SolveFieldError::NonFinite { detail } => {
                assert!(detail.contains("test-solver"), "{detail}");
                assert!(detail.contains("(2, 1)"), "{detail}");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(err.is_retryable());
    }

    #[test]
    fn retryability_classification() {
        assert!(!SolveFieldError::GridMismatch {
            detail: String::new()
        }
        .is_retryable());
        assert!(!SolveFieldError::InvalidInput {
            detail: String::new()
        }
        .is_retryable());
        assert!(SolveFieldError::Numerical {
            detail: String::new()
        }
        .is_retryable());
        assert!(SolveFieldError::NonFinite {
            detail: String::new()
        }
        .is_retryable());
        assert!(!SolveFieldError::DeadlineExceeded {
            detail: String::new()
        }
        .is_retryable());
    }

    #[test]
    fn relaxed_default_ignores_factor() {
        let g = Grid2d::new(2, 2, 0.1);
        let eps = RealField2d::constant(g, 1.0);
        let j = ComplexField2d::zeros(g);
        let e = ZeroSolver.solve_ez_relaxed(&eps, &j, 1.0, 100.0).unwrap();
        assert_eq!(e.get(0, 0), Complex64::ZERO);
    }
}
