//! Rich labels attached to each dataset sample.
//!
//! MAPS-Data extracts "rich labels" from every simulation: transmission per
//! port, reflection, radiation, the full field phasors, the adjoint gradient
//! under a stated objective, and the Maxwell-operator fingerprint. A single
//! sample therefore supports many learning tasks (black-box S-parameter
//! regression, field prediction, gradient supervision, physics-residual
//! self-supervision).

use crate::field::{ComplexField2d, EmFields, RealField2d};
use crate::grid::Grid2d;
use serde::{Deserialize, Serialize};

/// Scattering amplitudes and powers observed at one port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortRecord {
    /// Index of the port in the device's port list.
    pub port: usize,
    /// Complex modal amplitude (S-parameter numerator, source-normalized).
    pub amplitude_re: f64,
    /// Imaginary part of the modal amplitude.
    pub amplitude_im: f64,
    /// Fraction of injected power carried by this port's mode.
    pub power: f64,
}

/// The fidelity level a sample was simulated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Coarse-mesh simulation: cheap, less accurate.
    Low,
    /// Fine-mesh simulation: the reference quality.
    High,
}

/// Everything MAPS-Data records about one simulated design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RichLabels {
    /// Fidelity level of the simulation that produced these labels.
    pub fidelity: Fidelity,
    /// Vacuum wavelength (µm).
    pub wavelength: f64,
    /// Index of the excited input port.
    pub input_port: usize,
    /// Eigenmode index launched at the input port.
    pub input_mode: usize,
    /// Per-port transmission records (excluding the input port's reflection).
    pub transmissions: Vec<PortRecord>,
    /// Power reflected back into the input port's mode.
    pub reflection: f64,
    /// Power unaccounted for by guided ports (radiated / absorbed in PML).
    pub radiation: f64,
    /// Full TM field solution.
    pub fields: EmFields,
    /// Adjoint gradient of the stated objective with respect to the design
    /// density, restricted to the design region (row-major over its cells).
    pub adjoint_gradient: Option<RealField2d>,
    /// Residual norm `‖A e − b‖/‖b‖` of the assembled Maxwell system,
    /// a self-check and a physics-loss target.
    pub maxwell_residual: f64,
}

impl RichLabels {
    /// Total guided output power (sum over transmission records).
    pub fn total_transmission(&self) -> f64 {
        self.transmissions.iter().map(|t| t.power).sum()
    }

    /// Transmission power into a specific port, or zero when unrecorded.
    pub fn transmission_into(&self, port: usize) -> f64 {
        self.transmissions
            .iter()
            .find(|t| t.port == port)
            .map_or(0.0, |t| t.power)
    }

    /// The grid the labels' fields live on.
    pub fn grid(&self) -> Grid2d {
        self.fields.grid()
    }
}

/// A complete dataset sample: the design (input) plus its rich labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Stable identifier of the device this sample came from; the
    /// hierarchical loader splits train/test at this level to avoid leakage.
    pub device_id: String,
    /// Device family name (e.g. `"bending"`).
    pub device_kind: String,
    /// Relative-permittivity map of the design.
    pub eps_r: RealField2d,
    /// Design density on the design region (the ρ̄ the optimizer sees),
    /// if the sample came from an optimization trajectory.
    pub density: Option<RealField2d>,
    /// The source current density used for the simulation.
    pub source: ComplexField2d,
    /// Labels extracted from the simulation.
    pub labels: RichLabels,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::ComplexField2d;

    fn dummy_labels() -> RichLabels {
        let g = Grid2d::new(2, 2, 0.1);
        let z = ComplexField2d::zeros(g);
        RichLabels {
            fidelity: Fidelity::High,
            wavelength: 1.55,
            input_port: 0,
            input_mode: 0,
            transmissions: vec![
                PortRecord {
                    port: 1,
                    amplitude_re: 0.8,
                    amplitude_im: 0.0,
                    power: 0.64,
                },
                PortRecord {
                    port: 2,
                    amplitude_re: 0.1,
                    amplitude_im: 0.0,
                    power: 0.01,
                },
            ],
            reflection: 0.05,
            radiation: 0.30,
            fields: EmFields {
                ez: z.clone(),
                hx: z.clone(),
                hy: z,
            },
            adjoint_gradient: None,
            maxwell_residual: 1e-12,
        }
    }

    #[test]
    fn total_transmission_sums_ports() {
        let l = dummy_labels();
        assert!((l.total_transmission() - 0.65).abs() < 1e-15);
    }

    #[test]
    fn transmission_lookup() {
        let l = dummy_labels();
        assert_eq!(l.transmission_into(2), 0.01);
        assert_eq!(l.transmission_into(7), 0.0);
    }

    #[test]
    fn labels_serde_roundtrip() {
        let l = dummy_labels();
        let s = serde_json::to_string(&l).unwrap();
        let back: RichLabels = serde_json::from_str(&s).unwrap();
        assert_eq!(back, l);
    }
}
