//! Property-based tests of the training framework's encodings and metrics.

use maps_core::{ComplexField2d, Grid2d, RealField2d};
use maps_linalg::Complex64;
use maps_train::{cosine, decode_field, encode_input, encode_target, FieldNormalizer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Target encoding/decoding is a lossless roundtrip for any scale.
    #[test]
    fn target_roundtrip(
        scale in 0.01..100.0f64,
        values in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 12),
    ) {
        let grid = Grid2d::new(4, 3, 0.1);
        let ez = ComplexField2d::from_vec(
            grid,
            values.iter().map(|(re, im)| Complex64::new(*re, *im)).collect(),
        );
        let norm = FieldNormalizer { scale };
        let t = encode_target(&ez, norm);
        let back = decode_field(&t, grid, norm);
        for (a, b) in back.as_slice().iter().zip(ez.as_slice()) {
            prop_assert!((*a - *b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// The permittivity channel of the encoding is an affine map of ε,
    /// independent of the source.
    #[test]
    fn eps_channel_is_affine(eps_val in 1.0..12.0f64, src_amp in 0.1..10.0f64) {
        let grid = Grid2d::new(6, 6, 0.1);
        let eps = RealField2d::constant(grid, eps_val);
        let mut j = ComplexField2d::zeros(grid);
        j.set(3, 3, Complex64::from_re(src_amp));
        let enc = encode_input(&eps, &j, 4.0, false);
        let expect = (eps_val - 1.0) / 11.0;
        for k in 0..36 {
            prop_assert!((enc.as_slice()[k] - expect).abs() < 1e-12);
        }
        // Source channels are amplitude-normalized: peak magnitude 1.
        let peak = enc.as_slice()[36..108]
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        prop_assert!((peak - 1.0).abs() < 1e-9);
    }

    /// Cosine similarity is bounded in [−1, 1] and scale-invariant.
    #[test]
    fn cosine_properties(
        a in prop::collection::vec(-10.0..10.0f64, 3..20),
        k in 0.1..10.0f64,
    ) {
        let b: Vec<f64> = a.iter().map(|v| v * k).collect();
        let c = cosine(&a, &b);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&c));
        if a.iter().any(|v| *v != 0.0) {
            prop_assert!((c - 1.0).abs() < 1e-9, "positive scaling keeps cosine 1: {c}");
        }
    }

    /// Wave-prior channels always lie on the unit circle and accumulate
    /// monotonically in phase along x for positive permittivity.
    #[test]
    fn wave_prior_unit_circle(eps_val in 1.0..12.0f64) {
        let grid = Grid2d::new(8, 4, 0.05);
        let eps = RealField2d::constant(grid, eps_val);
        let j = ComplexField2d::zeros(grid);
        let enc = encode_input(&eps, &j, maps_core::omega_for_wavelength(1.55), true);
        let hw = 32;
        for k in 0..hw {
            let c = enc.as_slice()[4 * hw + k];
            let s = enc.as_slice()[5 * hw + k];
            prop_assert!((c * c + s * s - 1.0).abs() < 1e-9);
        }
    }
}
