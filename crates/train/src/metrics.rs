//! Standardized evaluation metrics (paper §III-B2).
//!
//! * **N-L2norm** — normalized L2 field error `‖ê − e‖/‖e‖`.
//! * **Gradient similarity** — cosine similarity between a model-derived
//!   adjoint gradient and the exact FDFD adjoint gradient over the design
//!   region; the paper's key metric for inverse-design readiness.
//! * **S-parameter error** — error of modal transmission amplitudes
//!   computed from predicted fields.

use maps_core::{ComplexField2d, RealField2d};

/// Normalized L2 distance between predicted and reference complex fields.
pub fn n_l2norm(pred: &ComplexField2d, truth: &ComplexField2d) -> f64 {
    pred.normalized_l2_distance(truth)
}

/// Cosine similarity between two real gradient fields (flattened).
///
/// Returns 0 when either gradient is identically zero.
pub fn gradient_similarity(a: &RealField2d, b: &RealField2d) -> f64 {
    cosine(a.as_slice(), b.as_slice())
}

/// Cosine similarity of two flat vectors.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Relative S-parameter (modal amplitude) error:
/// `|â − a| / max(|a|, ε)` averaged over the given functional evaluations.
pub fn s_param_error(
    pred: &ComplexField2d,
    truth: &ComplexField2d,
    functionals: &[maps_fdfd::LinearFunctional],
) -> f64 {
    if functionals.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for f in functionals {
        let a_hat = f.eval(pred);
        let a = f.eval(truth);
        acc += (a_hat - a).abs() / a.abs().max(1e-12);
    }
    acc / functionals.len() as f64
}

/// Aggregates a metric over samples: mean of the per-sample values.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;
    use maps_linalg::Complex64;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-15);
        assert!((cosine(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-15);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn n_l2_of_perfect_prediction_is_zero() {
        let g = Grid2d::new(3, 3, 0.1);
        let mut f = ComplexField2d::zeros(g);
        f.set(1, 1, Complex64::new(1.0, -2.0));
        assert_eq!(n_l2norm(&f, &f), 0.0);
    }

    #[test]
    fn s_param_error_scales_with_amplitude_error() {
        let g = Grid2d::new(2, 2, 0.1);
        let mut truth = ComplexField2d::zeros(g);
        truth.set(0, 0, Complex64::from_re(2.0));
        let mut pred = ComplexField2d::zeros(g);
        pred.set(0, 0, Complex64::from_re(1.0)); // 50% low
        let f = maps_fdfd::LinearFunctional {
            weights: vec![(0, Complex64::ONE)],
        };
        let err = s_param_error(&pred, &truth, &[f]);
        assert!((err - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gradient_similarity_is_scale_invariant() {
        let g = Grid2d::new(2, 2, 0.1);
        let a = RealField2d::from_vec(g, vec![1.0, -2.0, 3.0, 0.5]);
        let b = RealField2d::from_vec(g, vec![10.0, -20.0, 30.0, 5.0]);
        assert!((gradient_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }
}
