//! The three gradient-computation methods compared in the paper's Table II.
//!
//! 1. **AD-Black-Box** — differentiate a scalar-response network with
//!    respect to its permittivity input.
//! 2. **AD-Pred-Field** — compute the objective from a field-predictor's
//!    output differentiably, then differentiate through network + objective
//!    with respect to the permittivity input.
//! 3. **Fwd & Adj Field** — query the field predictor twice (forward source
//!    and adjoint source) and assemble the gradient analytically as
//!    `−2ω²·Re(e_adj ⊙ e)`; no differentiation through the network at all.

use crate::featurize::encode_input;
use crate::neural_solver::NeuralFieldSolver;
use maps_core::{ComplexField2d, FieldSolver, RealField2d, SolveFieldError, SolveRequest};
use maps_fdfd::{gradient_from_fields, LinearFunctional, PowerObjective};
use maps_nn::Model;
use maps_tensor::{Params, Tape, Tensor};

/// Gradient of a black-box scalar-response model with respect to the
/// permittivity map (method "AD-Black Box").
pub fn ad_black_box_gradient(
    model: &dyn Model,
    params: &Params,
    eps_r: &RealField2d,
    source: &ComplexField2d,
    omega: f64,
) -> RealField2d {
    let input = encode_input(eps_r, source, omega, model.wants_wave_prior());
    let response = model.forward(params, input.trace()); // [1, 1]
    let grads = response.sum().backward();
    input_gradient_to_eps(grads.wrt(&input).expect("input gradient"), eps_r)
}

/// Gradient by differentiating through a field predictor *and* a
/// differentiable modal-power objective (method "AD-Pred Field").
pub fn ad_pred_field_gradient(
    model: &dyn Model,
    params: &Params,
    eps_r: &RealField2d,
    source: &ComplexField2d,
    omega: f64,
    functional: &LinearFunctional,
) -> RealField2d {
    let grid = eps_r.grid();
    let input = encode_input(eps_r, source, omega, model.wants_wave_prior());
    let pred = model.forward(params, input.trace()); // [1, 2, H, W]
    let t = differentiable_modal_power(pred, functional, grid);
    let grads = t.backward();
    input_gradient_to_eps(grads.wrt(&input).expect("input gradient"), eps_r)
}

/// `|w·e|²` as a differentiable graph over a `[1, 2, H, W]` field
/// prediction (any tape; on `NoneTape` this is a plain evaluation).
pub fn differentiable_modal_power<T: Tape<f64>>(
    pred: Tensor<f64, T>,
    functional: &LinearFunctional,
    grid: maps_core::Grid2d,
) -> Tensor<f64, T> {
    let (h, w) = (grid.ny, grid.nx);
    let mut wre = Tensor::zeros(&[1, 1, h, w]);
    let mut wim = Tensor::zeros(&[1, 1, h, w]);
    for &(k, c) in &functional.weights {
        wre.as_mut_slice()[k] += c.re;
        wim.as_mut_slice()[k] += c.im;
    }
    let ere = pred.with_empty_tape().slice_channels(0, 1);
    let eim = pred.slice_channels(1, 2);
    // a = Σ w·e (complex): a_re = Σ (w_re·e_re − w_im·e_im), etc.
    let rr = ere.with_empty_tape().mul(wre.clone());
    let ir = ere.mul(wim.clone());
    let ii = eim.with_empty_tape().mul(wim);
    let ri = eim.mul(wre);
    let are = rr.add(ii.neg()).sum();
    let aim = ri.add(ir).sum();
    are.square().add(aim.square())
}

/// Gradient from NN-predicted forward and adjoint fields (method
/// "Fwd & Adj Field").
///
/// Both probe solves flow through [`FieldSolver::solve_ez_batch`] so a
/// batching-aware solver can group them; the adjoint stays a second phase
/// because its right-hand side depends on the forward field.
///
/// # Errors
///
/// Returns [`SolveFieldError`] if a neural solve fails.
pub fn fwd_adj_field_gradient<M: Model>(
    solver: &NeuralFieldSolver<M>,
    eps_r: &RealField2d,
    source: &ComplexField2d,
    omega: f64,
    objective: &PowerObjective,
) -> Result<RealField2d, SolveFieldError> {
    let forward = solver
        .solve_ez_batch(eps_r, &[SolveRequest::forward(source, omega)])
        .pop()
        .expect("a batch of one request returns one result")?;
    let rhs = ComplexField2d::from_vec(eps_r.grid(), objective.adjoint_rhs(&forward));
    let adjoint = solver
        .solve_ez_batch(eps_r, &[SolveRequest::adjoint(&rhs, omega)])
        .pop()
        .expect("a batch of one request returns one result")?;
    Ok(gradient_from_fields(&forward, &adjoint, omega))
}

/// Maps a gradient on the encoded input back to `dF/dε`: channel 0 of the
/// encoding is `(ε − 1)/11`, so the chain rule multiplies by `1/11`.
fn input_gradient_to_eps(grad_input: &Tensor, eps_r: &RealField2d) -> RealField2d {
    let grid = eps_r.grid();
    let (h, w) = (grid.ny, grid.nx);
    let hw = h * w;
    let d = grad_input.as_slice();
    let mut out = RealField2d::zeros(grid);
    for iy in 0..h {
        for ix in 0..w {
            out.set(ix, iy, d[iy * w + ix] / 11.0);
        }
    }
    debug_assert!(grad_input.len().is_multiple_of(hw));
    out
}

/// The per-method labels used in benchmark tables.
pub const GRAD_METHOD_NAMES: [&str; 3] = ["AD-Black Box", "AD-Pred Field", "Fwd & Adj Field"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::FieldNormalizer;
    use maps_core::Grid2d;
    use maps_linalg::Complex64;
    use maps_nn::{BlackBoxConfig, BlackBoxNet, Fno, FnoConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (RealField2d, ComplexField2d, f64) {
        let grid = Grid2d::new(16, 16, 0.1);
        let eps = RealField2d::constant(grid, 4.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(4, 8, Complex64::ONE);
        (eps, j, maps_core::omega_for_wavelength(1.55))
    }

    #[test]
    fn black_box_gradient_has_grid_shape() {
        let (eps, j, omega) = setup();
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = BlackBoxNet::new(
            &mut params,
            &mut rng,
            BlackBoxConfig {
                in_channels: 4,
                width: 4,
                stages: 2,
            },
        );
        let g = ad_black_box_gradient(&model, &params, &eps, &j, omega);
        assert_eq!(g.grid(), eps.grid());
        assert!(g.as_slice().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn pred_field_gradient_flows_through_objective() {
        let (eps, j, omega) = setup();
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 1,
            },
        );
        let functional = LinearFunctional {
            weights: vec![
                (200, Complex64::new(0.5, 0.1)),
                (201, Complex64::new(0.5, -0.1)),
            ],
        };
        let g = ad_pred_field_gradient(&model, &params, &eps, &j, omega, &functional);
        assert_eq!(g.grid(), eps.grid());
        assert!(g.as_slice().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn differentiable_modal_power_matches_direct_evaluation() {
        let grid = Grid2d::new(4, 4, 0.1);
        // A fixed "prediction".
        let mut pred = Tensor::zeros(&[1, 2, 4, 4]);
        for (k, v) in pred.as_mut_slice().iter_mut().enumerate() {
            *v = ((k * 13 % 7) as f64 - 3.0) * 0.2;
        }
        let functional = LinearFunctional {
            weights: vec![
                (5, Complex64::new(1.0, 0.5)),
                (10, Complex64::new(-0.3, 0.2)),
            ],
        };
        let t = differentiable_modal_power(pred.clone(), &functional, grid);
        // Direct: decode and evaluate.
        let field = crate::featurize::decode_field(&pred, grid, FieldNormalizer::identity());
        let a = functional.eval(&field);
        assert!(
            (t.item() - a.norm_sqr()).abs() < 1e-12,
            "{} vs {}",
            t.item(),
            a.norm_sqr()
        );
    }
}
