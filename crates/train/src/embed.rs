//! Exact t-SNE for dataset-distribution visualization (paper Fig. 5b).
//!
//! O(N²) implementation — ample for the few hundred design patterns the
//! figure embeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity of the input-space affinities.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 12.0,
            iterations: 300,
            learning_rate: 60.0,
            seed: 5,
        }
    }
}

/// Embeds high-dimensional points into 2-D with t-SNE.
///
/// # Panics
///
/// Panics if fewer than 3 points are given or dimensions disagree.
pub fn tsne(points: &[Vec<f64>], config: &TsneConfig) -> Vec<(f64, f64)> {
    let n = points.len();
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "dimension mismatch");

    // Pairwise squared distances.
    let mut d2 = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // Per-point conditional affinities with binary-searched bandwidth.
    let target_entropy = config.perplexity.ln();
    let mut p = vec![0.0; n * n];
    for i in 0..n {
        let mut beta = 1.0; // 1/(2σ²)
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        for _ in 0..50 {
            let mut sum = 0.0;
            for j in 0..n {
                if j != i {
                    sum += (-beta * d2[i * n + j]).exp();
                }
            }
            let sum = sum.max(1e-300);
            let mut entropy = 0.0;
            for j in 0..n {
                if j != i {
                    let pj = (-beta * d2[i * n + j]).exp() / sum;
                    if pj > 1e-300 {
                        entropy -= pj * pj.ln();
                    }
                }
            }
            if (entropy - target_entropy).abs() < 1e-5 {
                break;
            }
            if entropy > target_entropy {
                lo = beta;
                beta = if hi.is_finite() {
                    (beta + hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let mut sum = 0.0;
        for j in 0..n {
            if j != i {
                sum += (-beta * d2[i * n + j]).exp();
            }
        }
        let sum = sum.max(1e-300);
        for j in 0..n {
            if j != i {
                p[i * n + j] = (-beta * d2[i * n + j]).exp() / sum;
            }
        }
    }
    // Symmetrize.
    let mut pij = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Initial layout.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(-1e-2..1e-2), rng.gen_range(-1e-2..1e-2)))
        .collect();
    let mut vel = vec![(0.0, 0.0); n];

    for it in 0..config.iterations {
        let exaggeration = if it < config.iterations / 4 { 4.0 } else { 1.0 };
        // Student-t affinities in the embedding.
        let mut qnum = vec![0.0; n * n];
        let mut qsum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i].0 - y[j].0;
                let dy = y[i].1 - y[j].1;
                let q = 1.0 / (1.0 + dx * dx + dy * dy);
                qnum[i * n + j] = q;
                qnum[j * n + i] = q;
                qsum += 2.0 * q;
            }
        }
        let qsum = qsum.max(1e-300);
        let momentum = if it < 60 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut gx = 0.0;
            let mut gy = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let q = qnum[i * n + j];
                let coeff = (exaggeration * pij[i * n + j] - q / qsum) * q;
                gx += 4.0 * coeff * (y[i].0 - y[j].0);
                gy += 4.0 * coeff * (y[i].1 - y[j].1);
            }
            vel[i].0 = momentum * vel[i].0 - config.learning_rate * gx;
            vel[i].1 = momentum * vel[i].1 - config.learning_rate * gy;
        }
        for i in 0..n {
            y[i].0 += vel[i].0;
            y[i].1 += vel[i].1;
        }
    }
    y
}

/// Average silhouette-like separation score between two labelled groups of
/// embedded points: mean inter-group distance over mean intra-group
/// distance. Values well above 1 mean the groups separate.
pub fn separation_score(embedded: &[(f64, f64)], labels: &[bool]) -> f64 {
    assert_eq!(embedded.len(), labels.len(), "label count mismatch");
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for i in 0..embedded.len() {
        for j in (i + 1)..embedded.len() {
            let dx = embedded[i].0 - embedded[j].0;
            let dy = embedded[i].1 - embedded[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if labels[i] == labels[j] {
                intra.push(d);
            } else {
                inter.push(d);
            }
        }
    }
    let m = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if intra.is_empty() || inter.is_empty() {
        return 1.0;
    }
    m(&inter) / m(&intra).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_gaussian_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..20 {
            points.push(
                (0..10)
                    .map(|_| rng.gen_range(-0.1..0.1))
                    .collect::<Vec<f64>>(),
            );
            labels.push(false);
        }
        for _ in 0..20 {
            points.push(
                (0..10)
                    .map(|_| 5.0 + rng.gen_range(-0.1..0.1))
                    .collect::<Vec<f64>>(),
            );
            labels.push(true);
        }
        let emb = tsne(&points, &TsneConfig::default());
        let score = separation_score(&emb, &labels);
        assert!(score > 2.0, "clusters should separate: score {score}");
    }

    #[test]
    fn deterministic_under_seed() {
        let points: Vec<Vec<f64>> = (0..10)
            .map(|k| vec![k as f64, (k * k) as f64 * 0.1, 1.0])
            .collect();
        let a = tsne(&points, &TsneConfig::default());
        let b = tsne(&points, &TsneConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_tiny_inputs() {
        tsne(&[vec![0.0], vec![1.0]], &TsneConfig::default());
    }
}
