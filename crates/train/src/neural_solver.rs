//! A trained neural operator wrapped as a [`FieldSolver`].
//!
//! This is the paper's capstone integration (§IV-D): MAPS-InvDes runs its
//! adjoint loop against this solver instead of the FDFD backend, getting
//! NN-predicted forward *and* adjoint fields (the adjoint solve uses the
//! reciprocity default of [`FieldSolver::solve_adjoint_ez`]).
//!
//! Inference runs tape-free. By default the model evaluates at training
//! precision (`f64`); [`NeuralFieldSolver::with_f32_inference`] opts into
//! `f32` storage — the parameters are cast once at construction and every
//! solve then moves half the memory per element.

use crate::featurize::{decode_field, encode_input, FieldNormalizer};
use maps_core::{ComplexField2d, FieldSolver, RealField2d, SolveFieldError};
use maps_nn::Model;
use maps_tensor::Params;

/// Numeric precision used for tape-free neural inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferencePrecision {
    /// Evaluate in `f64` (matches training arithmetic bit-for-bit).
    #[default]
    F64,
    /// Evaluate in `f32` (half the memory traffic; ~1e-4 relative error).
    F32,
}

/// A neural [`FieldSolver`].
pub struct NeuralFieldSolver<M: Model> {
    model: M,
    params: Params,
    /// `f32` twin of `params`, materialized once when `F32` is selected.
    params32: Option<Params<f32>>,
    normalizer: FieldNormalizer,
    name: String,
}

impl<M: Model> NeuralFieldSolver<M> {
    /// Wraps a trained model with its parameters and the field normalizer
    /// fitted during training. Inference runs in `f64`.
    pub fn new(model: M, params: Params, normalizer: FieldNormalizer) -> Self {
        let name = format!("neural-{}", model.name());
        NeuralFieldSolver {
            model,
            params,
            params32: None,
            normalizer,
            name,
        }
    }

    /// Like [`NeuralFieldSolver::new`], but runs every solve in `f32`:
    /// the parameter store is cast once here and reused across solves.
    pub fn with_f32_inference(model: M, params: Params, normalizer: FieldNormalizer) -> Self {
        let mut solver = Self::new(model, params, normalizer);
        solver.params32 = Some(solver.params.cast::<f32>());
        solver
    }

    /// The precision solves run at.
    pub fn precision(&self) -> InferencePrecision {
        if self.params32.is_some() {
            InferencePrecision::F32
        } else {
            InferencePrecision::F64
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The trained parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The training-time field normalizer.
    pub fn normalizer(&self) -> FieldNormalizer {
        self.normalizer
    }
}

impl<M: Model> FieldSolver for NeuralFieldSolver<M> {
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        if eps_r.grid() != source.grid() {
            return Err(SolveFieldError::GridMismatch {
                detail: "eps and source grids differ".into(),
            });
        }
        let input = encode_input(eps_r, source, omega, self.model.wants_wave_prior());
        let pred = match &self.params32 {
            Some(p32) => self.model.infer_f32(p32, input.cast::<f32>()).cast::<f64>(),
            None => self.model.infer(&self.params, input),
        };
        // The model was trained on unit-peak sources; rescale its output
        // back to the physical source amplitude.
        let jmax = source
            .as_slice()
            .iter()
            .map(|z| z.abs())
            .fold(0.0f64, f64::max);
        let field = decode_field(&pred, eps_r.grid(), self.normalizer);
        let out = ComplexField2d::from_vec(
            eps_r.grid(),
            field.as_slice().iter().map(|z| *z * jmax).collect(),
        );
        // A poisoned weight tensor silently predicts NaN everywhere; surface
        // that as a solver error instead of feeding it to the adjoint loop.
        maps_core::ensure_finite(&out, &self.name)?;
        Ok(out)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;
    use maps_linalg::Complex64;
    use maps_nn::{Fno, FnoConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fno(params: &mut Params) -> Fno {
        let mut rng = StdRng::seed_from_u64(0);
        Fno::new(
            params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 1,
            },
        )
    }

    #[test]
    fn neural_solver_implements_field_solver() {
        let mut params = Params::new();
        let model = small_fno(&mut params);
        let solver = NeuralFieldSolver::new(model, params, FieldNormalizer::identity());
        assert_eq!(solver.precision(), InferencePrecision::F64);
        let grid = Grid2d::new(16, 16, 0.1);
        let eps = RealField2d::constant(grid, 2.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(8, 8, Complex64::ONE);
        let omega = maps_core::omega_for_wavelength(1.55);
        let ez = solver.solve_ez(&eps, &j, omega).unwrap();
        assert_eq!(ez.grid(), grid);
        // Linear scaling with the source amplitude (by construction).
        let mut j2 = ComplexField2d::zeros(grid);
        j2.set(8, 8, Complex64::from_re(2.0));
        let ez2 = solver.solve_ez(&eps, &j2, omega).unwrap();
        let ratio = ez2.norm() / ez.norm().max(1e-30);
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        // Adjoint path (reciprocity default) also runs.
        let adj = solver.solve_adjoint_ez(&eps, &j, omega).unwrap();
        assert_eq!(adj.grid(), grid);
        assert!(solver.name().starts_with("neural-"));
    }

    #[test]
    fn f32_solver_tracks_f64_solution() {
        let mut params = Params::new();
        let model = small_fno(&mut params);
        let mut params_b = Params::new();
        let model_b = small_fno(&mut params_b);
        let solver64 = NeuralFieldSolver::new(model, params, FieldNormalizer::identity());
        let solver32 =
            NeuralFieldSolver::with_f32_inference(model_b, params_b, FieldNormalizer::identity());
        assert_eq!(solver32.precision(), InferencePrecision::F32);
        let grid = Grid2d::new(16, 16, 0.1);
        let eps = RealField2d::constant(grid, 2.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(8, 8, Complex64::ONE);
        let omega = maps_core::omega_for_wavelength(1.55);
        let e64 = solver64.solve_ez(&eps, &j, omega).unwrap();
        let e32 = solver32.solve_ez(&eps, &j, omega).unwrap();
        let num: f64 = e64
            .as_slice()
            .iter()
            .zip(e32.as_slice())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum();
        let rel = num.sqrt() / e64.norm().max(1e-30);
        assert!(rel < 1e-4, "f32 relative error {rel}");
    }

    #[test]
    fn poisoned_weights_surface_as_nonfinite_error() {
        let mut params = Params::new();
        let model = small_fno(&mut params);
        // Poison every parameter tensor.
        let ids: Vec<_> = params.ids().collect();
        for id in ids {
            for v in params.get_mut(id).as_mut_slice() {
                *v = f64::NAN;
            }
        }
        let solver = NeuralFieldSolver::new(model, params, FieldNormalizer::identity());
        let grid = Grid2d::new(16, 16, 0.1);
        let eps = RealField2d::constant(grid, 2.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(8, 8, Complex64::ONE);
        let err = solver
            .solve_ez(&eps, &j, maps_core::omega_for_wavelength(1.55))
            .unwrap_err();
        assert!(matches!(err, SolveFieldError::NonFinite { .. }), "{err:?}");
    }
}
