//! A trained neural operator wrapped as a [`FieldSolver`].
//!
//! This is the paper's capstone integration (§IV-D): MAPS-InvDes runs its
//! adjoint loop against this solver instead of the FDFD backend, getting
//! NN-predicted forward *and* adjoint fields (the adjoint solve uses the
//! reciprocity default of [`FieldSolver::solve_adjoint_ez`]).

use crate::featurize::{decode_field, encode_input, FieldNormalizer};
use maps_core::{ComplexField2d, FieldSolver, RealField2d, SolveFieldError};
use maps_nn::Model;
use maps_tensor::{Params, Tape};

/// A neural [`FieldSolver`].
pub struct NeuralFieldSolver<M: Model> {
    model: M,
    params: Params,
    normalizer: FieldNormalizer,
    name: String,
}

impl<M: Model> NeuralFieldSolver<M> {
    /// Wraps a trained model with its parameters and the field normalizer
    /// fitted during training.
    pub fn new(model: M, params: Params, normalizer: FieldNormalizer) -> Self {
        let name = format!("neural-{}", model.name());
        NeuralFieldSolver {
            model,
            params,
            normalizer,
            name,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The trained parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The training-time field normalizer.
    pub fn normalizer(&self) -> FieldNormalizer {
        self.normalizer
    }
}

impl<M: Model> FieldSolver for NeuralFieldSolver<M> {
    fn solve_ez(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        if eps_r.grid() != source.grid() {
            return Err(SolveFieldError::GridMismatch {
                detail: "eps and source grids differ".into(),
            });
        }
        let input = encode_input(eps_r, source, omega, self.model.wants_wave_prior());
        let mut tape = Tape::new();
        let x = tape.input(input);
        let pred = self.model.forward(&mut tape, &self.params, x);
        // The model was trained on unit-peak sources; rescale its output
        // back to the physical source amplitude.
        let jmax = source
            .as_slice()
            .iter()
            .map(|z| z.abs())
            .fold(0.0f64, f64::max);
        let field = decode_field(tape.value(pred), eps_r.grid(), self.normalizer);
        let out = ComplexField2d::from_vec(
            eps_r.grid(),
            field.as_slice().iter().map(|z| *z * jmax).collect(),
        );
        // A poisoned weight tensor silently predicts NaN everywhere; surface
        // that as a solver error instead of feeding it to the adjoint loop.
        maps_core::ensure_finite(&out, &self.name)?;
        Ok(out)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;
    use maps_linalg::Complex64;
    use maps_nn::{Fno, FnoConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn neural_solver_implements_field_solver() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 1,
            },
        );
        let solver = NeuralFieldSolver::new(model, params, FieldNormalizer::identity());
        let grid = Grid2d::new(16, 16, 0.1);
        let eps = RealField2d::constant(grid, 2.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(8, 8, Complex64::ONE);
        let omega = maps_core::omega_for_wavelength(1.55);
        let ez = solver.solve_ez(&eps, &j, omega).unwrap();
        assert_eq!(ez.grid(), grid);
        // Linear scaling with the source amplitude (by construction).
        let mut j2 = ComplexField2d::zeros(grid);
        j2.set(8, 8, Complex64::from_re(2.0));
        let ez2 = solver.solve_ez(&eps, &j2, omega).unwrap();
        let ratio = ez2.norm() / ez.norm().max(1e-30);
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        // Adjoint path (reciprocity default) also runs.
        let adj = solver.solve_adjoint_ez(&eps, &j, omega).unwrap();
        assert_eq!(adj.grid(), grid);
        assert!(solver.name().starts_with("neural-"));
    }

    #[test]
    fn poisoned_weights_surface_as_nonfinite_error() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 1,
            },
        );
        // Poison every parameter tensor.
        let ids: Vec<_> = params.ids().collect();
        for id in ids {
            for v in params.get_mut(id).as_mut_slice() {
                *v = f64::NAN;
            }
        }
        let solver = NeuralFieldSolver::new(model, params, FieldNormalizer::identity());
        let grid = Grid2d::new(16, 16, 0.1);
        let eps = RealField2d::constant(grid, 2.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(8, 8, Complex64::ONE);
        let err = solver
            .solve_ez(&eps, &j, maps_core::omega_for_wavelength(1.55))
            .unwrap_err();
        assert!(matches!(err, SolveFieldError::NonFinite { .. }), "{err:?}");
    }
}
