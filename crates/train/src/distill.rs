//! Knowledge distillation and fine-tuning workflows (paper §III-B:
//! "flexible training workflows … such as multi-task learning,
//! distillation, pretraining and fine-tuning").

use crate::featurize::{encode_input, FieldNormalizer};
use crate::loader::LoaderConfig;
use crate::metrics::mean;
use crate::trainer::{EpochRecord, TrainReport};
use maps_core::Sample;
use maps_nn::{Adam, Model};
use maps_tensor::Params;

/// Distillation configuration.
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Epochs of student training.
    pub epochs: usize,
    /// Adam learning rate for the student.
    pub learning_rate: f64,
    /// Weight of the hard (ground-truth) loss; the soft (teacher) loss
    /// gets `1 − hard_weight`.
    pub hard_weight: f64,
    /// Loader settings.
    pub loader: LoaderConfig,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            epochs: 10,
            learning_rate: 2e-3,
            hard_weight: 0.5,
            loader: LoaderConfig::default(),
        }
    }
}

/// Trains a student field model against a frozen teacher plus ground-truth
/// labels: `L = w·NMSE(student, truth) + (1−w)·NMSE(student, teacher)`.
///
/// Teacher and student may have different input encodings (e.g. a
/// NeurOLight teacher with wave priors distilled into a plain FNO student);
/// each sees its own featurization of the same sample.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn distill_field_model(
    teacher: &dyn Model,
    teacher_params: &Params,
    student: &dyn Model,
    student_params: &mut Params,
    samples: &[Sample],
    config: &DistillConfig,
) -> TrainReport {
    assert!(!samples.is_empty(), "empty distillation set");
    let normalizer = FieldNormalizer::fit(samples);
    let mut adam = Adam::new(config.learning_rate);
    let mut epochs = Vec::with_capacity(config.epochs);
    // Precompute teacher predictions once (the teacher is frozen, so they
    // run tape-free).
    let teacher_preds: Vec<maps_tensor::Tensor> = samples
        .iter()
        .map(|s| {
            let omega = maps_core::omega_for_wavelength(s.labels.wavelength);
            let input = encode_input(&s.eps_r, &s.source, omega, teacher.wants_wave_prior());
            teacher.infer(teacher_params, input)
        })
        .collect();

    for epoch in 0..config.epochs {
        let mut losses = Vec::new();
        // Per-sample steps keep the teacher-prediction pairing simple.
        for (sample, soft_target) in samples.iter().zip(&teacher_preds) {
            let (input, hard_target) =
                crate::featurize::encode_sample(sample, student.wants_wave_prior(), normalizer);
            let pred = student.forward(student_params, input.trace());
            let l_hard = pred
                .with_empty_tape()
                .nmse(hard_target)
                .scale(config.hard_weight);
            // Teacher predictions share the student's target convention
            // only if their normalizers match; rescale via the sample's
            // source peak exactly like encode_sample does.
            let l_soft = pred
                .nmse(soft_target.clone())
                .scale(1.0 - config.hard_weight);
            let loss = l_soft.add(l_hard);
            losses.push(loss.item());
            let grads = loss.backward();
            adam.step(student_params, &grads);
        }
        epochs.push(EpochRecord {
            epoch,
            loss: mean(&losses),
        });
    }
    TrainReport {
        epochs,
        val_epochs: Vec::new(),
        normalizer,
        skipped_batches: 0,
    }
}

/// Fine-tunes a pretrained model on a new sample set with a reduced
/// learning rate — the pretrain-then-adapt workflow (e.g. pretrain on
/// cheap low-fidelity data, fine-tune on scarce high-fidelity data).
pub fn fine_tune(
    model: &dyn Model,
    params: &mut Params,
    samples: &[Sample],
    epochs: usize,
    learning_rate: f64,
) -> TrainReport {
    crate::trainer::train_field_model(
        model,
        params,
        samples,
        &crate::trainer::TrainConfig {
            epochs,
            learning_rate,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::{ComplexField2d, EmFields, Fidelity, Grid2d, RealField2d, RichLabels};
    use maps_linalg::Complex64;
    use maps_nn::{Fno, FnoConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize) -> Vec<Sample> {
        let g = Grid2d::new(12, 12, 0.1);
        (0..n)
            .map(|k| {
                let mut src = ComplexField2d::zeros(g);
                src.set(3 + (k % 3), 6, Complex64::ONE);
                let mut ez = ComplexField2d::zeros(g);
                for iy in 0..12 {
                    for ix in 0..12 {
                        let d = (ix as f64 - 6.0).hypot(iy as f64 - 6.0);
                        ez.set(ix, iy, Complex64::new((-d * 0.4).exp(), 0.0));
                    }
                }
                Sample {
                    device_id: format!("d{k}"),
                    device_kind: "synthetic".into(),
                    eps_r: RealField2d::constant(g, 2.0),
                    density: None,
                    source: src,
                    labels: RichLabels {
                        fidelity: Fidelity::Low,
                        wavelength: 1.55,
                        input_port: 0,
                        input_mode: 0,
                        transmissions: vec![],
                        reflection: 0.0,
                        radiation: 0.0,
                        fields: EmFields {
                            ez,
                            hx: ComplexField2d::zeros(g),
                            hy: ComplexField2d::zeros(g),
                        },
                        adjoint_gradient: None,
                        maxwell_residual: 0.0,
                    },
                }
            })
            .collect()
    }

    #[test]
    fn distillation_reduces_student_loss() {
        let data = samples(4);
        let mut rng = StdRng::seed_from_u64(0);
        let mut tp = Params::new();
        let teacher = Fno::new(
            &mut tp,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 6,
                modes: 3,
                depth: 2,
            },
        );
        let mut sp = Params::new();
        let student = Fno::new(
            &mut sp,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 1,
            },
        );
        let report = distill_field_model(
            &teacher,
            &tp,
            &student,
            &mut sp,
            &data,
            &DistillConfig {
                epochs: 8,
                learning_rate: 5e-3,
                hard_weight: 0.7,
                ..Default::default()
            },
        );
        assert!(
            report.final_loss() < report.epochs[0].loss,
            "distillation should reduce the student loss: {:?}",
            (report.epochs[0].loss, report.final_loss())
        );
    }

    #[test]
    fn fine_tuning_continues_training() {
        let data = samples(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 1,
            },
        );
        let pre = fine_tune(&model, &mut params, &data, 4, 4e-3);
        let post = fine_tune(&model, &mut params, &data, 4, 1e-3);
        assert!(post.final_loss() <= pre.epochs[0].loss);
    }
}
