//! # maps-train
//!
//! MAPS-Train: the training infrastructure for AI-assisted photonic
//! simulation. Standardized input/target encodings, a hierarchical
//! (device-level-split) data loader with physically exact superposition
//! mixup, data-driven (NMSE) and physics-driven (Maxwell residual) losses,
//! standardized metrics (N-L2norm, gradient similarity, S-parameter error),
//! a trainer, the three gradient-computation methods of the paper's
//! Table II, a neural [`maps_core::FieldSolver`] for MAPS-InvDes
//! integration, and t-SNE for dataset-distribution plots.

pub mod distill;
pub mod embed;
pub mod featurize;
pub mod gradmethods;
pub mod loader;
pub mod loss;
pub mod metrics;
pub mod neural_solver;
pub mod trainer;

pub use distill::{distill_field_model, fine_tune, DistillConfig};
pub use embed::{separation_score, tsne, TsneConfig};
pub use featurize::{
    decode_field, encode_input, encode_sample, encode_target, stack_batch, FieldNormalizer,
    BASE_CHANNELS, WAVE_PRIOR_CHANNELS,
};
pub use gradmethods::{
    ad_black_box_gradient, ad_pred_field_gradient, differentiable_modal_power,
    fwd_adj_field_gradient, GRAD_METHOD_NAMES,
};
pub use loader::{make_batches, mixup_samples, superpose, Batch, LoaderConfig};
pub use loss::{interior_mask, physics_residual_loss, source_term_tensor, LossKind};
pub use metrics::{cosine, gradient_similarity, mean, n_l2norm, s_param_error};
pub use neural_solver::NeuralFieldSolver;
pub use trainer::{
    evaluate_n_l2, predict_field, probe_encoding, scalar_targets, train_field_model,
    train_field_model_validated, EpochRecord, TrainConfig, TrainReport,
};
