//! Standardized model input/target encoding (paper Fig. 3).
//!
//! Every model sees the same inputs — permittivity ε and source `J` plus a
//! wavelength encoding — and predicts the `Ez` phasor as two real channels.
//! NeurOLight-style models additionally receive a *wave prior*: cos/sin of
//! the accumulated optical path `ω·∫√ε·dx`.

use maps_core::{ComplexField2d, RealField2d, Sample};
use maps_tensor::Tensor;

/// Channel count of the standard encoding.
pub const BASE_CHANNELS: usize = 4;
/// Channel count with the wave prior appended.
pub const WAVE_PRIOR_CHANNELS: usize = 6;

/// Dataset-level field scaling so targets are O(1) for training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldNormalizer {
    /// Multiplier applied to physical fields to get training targets.
    pub scale: f64,
}

impl FieldNormalizer {
    /// Identity normalizer.
    pub fn identity() -> Self {
        FieldNormalizer { scale: 1.0 }
    }

    /// Fits the scale to a set of samples: `1 / rms(Ez / ‖J‖∞)` over the
    /// set. Fields are referenced to their sample's peak source amplitude
    /// because the input encoding normalizes sources the same way — by
    /// linearity of Maxwell's equations the pair `(J/‖J‖∞, E/‖J‖∞)` is the
    /// scale-consistent training view.
    pub fn fit(samples: &[Sample]) -> Self {
        let mut acc = 0.0;
        let mut n = 0usize;
        for s in samples {
            let jmax = source_peak(&s.source);
            let contribution = s
                .labels
                .fields
                .ez
                .as_slice()
                .iter()
                .map(|z| z.norm_sqr() / (jmax * jmax))
                .sum::<f64>();
            // A single corrupted sample must not poison the global scale —
            // skip it here; the training loop skips its batch separately.
            if !contribution.is_finite() {
                continue;
            }
            acc += contribution;
            n += s.labels.fields.ez.as_slice().len();
        }
        let rms = (acc / n.max(1) as f64).sqrt();
        FieldNormalizer {
            scale: if rms > 0.0 { 1.0 / rms } else { 1.0 },
        }
    }
}

/// Peak source magnitude `‖J‖∞` used for the scale-consistent encoding.
pub fn source_peak(source: &ComplexField2d) -> f64 {
    source
        .as_slice()
        .iter()
        .map(|z| z.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12)
}

/// Builds the input feature map for one permittivity/source/frequency
/// triple. Channel layout: `[ε_norm, J_re, J_im, λ_enc]`, plus
/// `[cos φ, sin φ]` when `wave_prior` is set.
pub fn encode_input(
    eps_r: &RealField2d,
    source: &ComplexField2d,
    omega: f64,
    wave_prior: bool,
) -> Tensor {
    let grid = eps_r.grid();
    let (h, w) = (grid.ny, grid.nx);
    let channels = if wave_prior {
        WAVE_PRIOR_CHANNELS
    } else {
        BASE_CHANNELS
    };
    let mut t = Tensor::zeros(&[1, channels, h, w]);
    let hw = h * w;
    {
        let d = t.as_mut_slice();
        // Source channels are rescaled so typical mode amplitudes are O(1).
        let jmax = source_peak(source);
        for iy in 0..h {
            for ix in 0..w {
                let k = iy * w + ix;
                d[k] = (eps_r.get(ix, iy) - 1.0) / 11.0; // ε ∈ [1, 12] → [0, 1]
                let j = source.get(ix, iy);
                d[hw + k] = j.re / jmax;
                d[2 * hw + k] = j.im / jmax;
                d[3 * hw + k] = (2.0 * std::f64::consts::PI / omega - 1.55) / 0.1;
            }
        }
        if wave_prior {
            // Accumulated optical path along +x per row.
            for iy in 0..h {
                let mut phase = 0.0;
                for ix in 0..w {
                    phase += omega * eps_r.get(ix, iy).max(0.0).sqrt() * grid.dl;
                    let k = iy * w + ix;
                    d[4 * hw + k] = phase.cos();
                    d[5 * hw + k] = phase.sin();
                }
            }
        }
    }
    t
}

/// Builds the `[1, 2, H, W]` training target from an `Ez` phasor.
pub fn encode_target(ez: &ComplexField2d, normalizer: FieldNormalizer) -> Tensor {
    let grid = ez.grid();
    let (h, w) = (grid.ny, grid.nx);
    let mut t = Tensor::zeros(&[1, 2, h, w]);
    let hw = h * w;
    {
        let d = t.as_mut_slice();
        for iy in 0..h {
            for ix in 0..w {
                let k = iy * w + ix;
                let z = ez.get(ix, iy);
                d[k] = z.re * normalizer.scale;
                d[hw + k] = z.im * normalizer.scale;
            }
        }
    }
    t
}

/// Converts a `[1, 2, H, W]` (or `[2, H, W]`-equivalent) prediction back
/// into a physical `Ez` field on `grid`.
pub fn decode_field(
    pred: &Tensor,
    grid: maps_core::Grid2d,
    normalizer: FieldNormalizer,
) -> ComplexField2d {
    let (h, w) = (grid.ny, grid.nx);
    assert_eq!(pred.len(), 2 * h * w, "prediction size mismatch");
    let hw = h * w;
    let inv = 1.0 / normalizer.scale;
    let d = pred.as_slice();
    let mut out = ComplexField2d::zeros(grid);
    for iy in 0..h {
        for ix in 0..w {
            let k = iy * w + ix;
            out.set(
                ix,
                iy,
                maps_linalg::Complex64::new(d[k] * inv, d[hw + k] * inv),
            );
        }
    }
    out
}

/// Encodes a dataset sample into `(input, target)` tensors.
///
/// Targets are referenced to the sample's peak source amplitude, matching
/// the input-side source normalization (see [`FieldNormalizer::fit`]).
pub fn encode_sample(
    sample: &Sample,
    wave_prior: bool,
    normalizer: FieldNormalizer,
) -> (Tensor, Tensor) {
    let omega = maps_core::omega_for_wavelength(sample.labels.wavelength);
    let jmax = source_peak(&sample.source);
    let per_sample = FieldNormalizer {
        scale: normalizer.scale / jmax,
    };
    (
        encode_input(&sample.eps_r, &sample.source, omega, wave_prior),
        encode_target(&sample.labels.fields.ez, per_sample),
    )
}

/// Stacks `[1, C, H, W]` tensors into one `[N, C, H, W]` batch.
///
/// # Panics
///
/// Panics if shapes differ or `items` is empty.
pub fn stack_batch(items: &[Tensor]) -> Tensor {
    assert!(!items.is_empty(), "empty batch");
    let shape = items[0].shape().to_vec();
    let per = items[0].len();
    let mut out = Tensor::zeros(&[items.len(), shape[1], shape[2], shape[3]]);
    for (i, item) in items.iter().enumerate() {
        assert_eq!(item.shape(), &shape[..], "batch shape mismatch");
        out.as_mut_slice()[i * per..(i + 1) * per].copy_from_slice(item.as_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::Grid2d;
    use maps_linalg::Complex64;

    #[test]
    fn encode_decode_roundtrip() {
        let grid = Grid2d::new(6, 4, 0.1);
        let mut ez = ComplexField2d::zeros(grid);
        for iy in 0..4 {
            for ix in 0..6 {
                ez.set(ix, iy, Complex64::new(ix as f64 * 0.1, -(iy as f64) * 0.2));
            }
        }
        let norm = FieldNormalizer { scale: 3.0 };
        let t = encode_target(&ez, norm);
        let back = decode_field(&t, grid, norm);
        assert!(back.normalized_l2_distance(&ez) < 1e-12);
    }

    #[test]
    fn input_channel_count_follows_wave_prior() {
        let grid = Grid2d::new(8, 8, 0.1);
        let eps = RealField2d::constant(grid, 4.0);
        let j = ComplexField2d::zeros(grid);
        let plain = encode_input(&eps, &j, 4.0, false);
        let prior = encode_input(&eps, &j, 4.0, true);
        assert_eq!(plain.shape()[1], BASE_CHANNELS);
        assert_eq!(prior.shape()[1], WAVE_PRIOR_CHANNELS);
        // Wave prior channels stay on the unit circle.
        let hw = 64;
        let d = prior.as_slice();
        for k in 0..hw {
            let c = d[4 * hw + k];
            let s = d[5 * hw + k];
            assert!((c * c + s * s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn stacking_preserves_order() {
        let a = Tensor::full(&[1, 1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 1, 2, 2], 2.0);
        let batch = stack_batch(&[a, b]);
        assert_eq!(batch.shape(), &[2, 1, 2, 2]);
        assert_eq!(batch.as_slice()[0], 1.0);
        assert_eq!(batch.as_slice()[4], 2.0);
    }

    #[test]
    fn normalizer_fit_gives_unit_rms() {
        let grid = Grid2d::new(4, 4, 0.1);
        let mut ez = ComplexField2d::zeros(grid);
        for k in 0..16 {
            ez.set(k % 4, k / 4, Complex64::new(2.0, 0.0));
        }
        let mut src = ComplexField2d::zeros(grid);
        src.set(1, 1, Complex64::ONE); // unit peak → jmax = 1
        let sample = Sample {
            device_id: "d".into(),
            device_kind: "bending".into(),
            eps_r: RealField2d::constant(grid, 1.0),
            density: None,
            source: src,
            labels: maps_core::RichLabels {
                fidelity: maps_core::Fidelity::High,
                wavelength: 1.55,
                input_port: 0,
                input_mode: 0,
                transmissions: vec![],
                reflection: 0.0,
                radiation: 0.0,
                fields: maps_core::EmFields {
                    ez: ez.clone(),
                    hx: ComplexField2d::zeros(grid),
                    hy: ComplexField2d::zeros(grid),
                },
                adjoint_gradient: None,
                maxwell_residual: 0.0,
            },
        };
        let norm = FieldNormalizer::fit(&[sample]);
        assert!((norm.scale - 0.5).abs() < 1e-12);
    }
}
