//! Data-driven and physics-driven loss construction (paper §III-B).

use maps_core::RealField2d;
use maps_tensor::{Conv2dSpec, Tape, Tensor};

/// Which loss drives training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossKind {
    /// Normalized MSE against the labeled field.
    Nmse,
    /// NMSE plus `weight ×` the Maxwell-residual physics loss.
    NmsePlusPhysics {
        /// Relative weight of the physics term.
        weight: f64,
    },
}

/// Data loss: normalized MSE between prediction and target.
pub fn nmse_loss<T: Tape<f64>>(pred: Tensor<f64, T>, target: Tensor) -> Tensor<f64, T> {
    pred.nmse(target)
}

/// Physics loss: squared residual of the interior Helmholtz equation
/// applied to the *predicted* field (self-supervision; needs no labels).
///
/// For the scaled field `u = s·Ez` the residual reads
/// `∇²u + ω²·ε·u + s·iω·J` and is evaluated away from the PML, where the
/// plain 5-point Laplacian is exact.
///
/// * `pred`: `[N, 2, H, W]` predicted field (re, im), carrying the tape.
/// * `eps`: `[N, 1, H, W]` relative permittivity (constant).
/// * `source_term`: `[N, 2, H, W]` precomputed `s·iω·J` channels (constant).
/// * `mask`: `[N, 1, H, W]` interior mask, 1 inside / 0 near boundaries.
pub fn physics_residual_loss<T: Tape<f64>>(
    pred: Tensor<f64, T>,
    eps: Tensor,
    source_term: Tensor,
    mask: Tensor,
    omega: f64,
    dl: f64,
) -> Tensor<f64, T> {
    // 5-point Laplacian as a fixed depthwise kernel applied per channel.
    let inv_dl2 = 1.0 / (dl * dl);
    let lap_kernel = Tensor::from_vec(
        &[1, 1, 3, 3],
        vec![
            0.0,
            inv_dl2,
            0.0,
            inv_dl2,
            -4.0 * inv_dl2,
            inv_dl2,
            0.0,
            inv_dl2,
            0.0,
        ],
    );
    let spec = Conv2dSpec {
        padding: 1,
        stride: 1,
    };
    let re = pred.with_empty_tape().slice_channels(0, 1);
    let im = pred.slice_channels(1, 2);
    let w2 = omega * omega;
    let src_re = source_term.clone().slice_channels(0, 1);
    let src_im = source_term.slice_channels(1, 2);
    // Residual per channel: ∇²u + ω²·ε·u + s·iω·J.
    let lap_re = re.with_empty_tape().conv2d(lap_kernel.clone(), spec);
    let face_re = re.mul(eps.clone()).scale(w2);
    let res_re = lap_re.add(face_re).add(src_re);
    let lap_im = im.with_empty_tape().conv2d(lap_kernel, spec);
    let face_im = im.mul(eps).scale(w2);
    let res_im = lap_im.add(face_im).add(src_im);
    // Masked mean square.
    let mre = res_re.mul(mask.clone());
    let mim = res_im.mul(mask);
    let sre = mre.with_empty_tape().mul(mre);
    let sim = mim.with_empty_tape().mul(mim);
    sre.add(sim).mean()
}

/// Builds the `s·iω·J` source-term channels for [`physics_residual_loss`]
/// from a batch of complex source fields (already scaled by the field
/// normalizer `s`).
pub fn source_term_tensor(
    sources: &[&maps_core::ComplexField2d],
    omega: f64,
    field_scale: f64,
) -> Tensor {
    let grid = sources[0].grid();
    let (h, w) = (grid.ny, grid.nx);
    let hw = h * w;
    let mut t = Tensor::zeros(&[sources.len(), 2, h, w]);
    {
        let d = t.as_mut_slice();
        for (n, src) in sources.iter().enumerate() {
            for iy in 0..h {
                for ix in 0..w {
                    let k = iy * w + ix;
                    let j = src.get(ix, iy);
                    // The assembled RHS is −iω·J, so the residual form
                    // A·u − s·b uses +s·iω·J on the left side.
                    d[n * 2 * hw + k] = -field_scale * omega * j.im;
                    d[n * 2 * hw + hw + k] = field_scale * omega * j.re;
                }
            }
        }
    }
    t
}

/// Interior mask that zeroes a margin of `margin` cells (PML + stencil
/// boundary) for a batch of size `n`.
pub fn interior_mask(n: usize, eps: &RealField2d, margin: usize) -> Tensor {
    let grid = eps.grid();
    let (h, w) = (grid.ny, grid.nx);
    let mut t = Tensor::zeros(&[n, 1, h, w]);
    {
        let d = t.as_mut_slice();
        for b in 0..n {
            for iy in margin..h.saturating_sub(margin) {
                for ix in margin..w.saturating_sub(margin) {
                    d[b * h * w + iy * w + ix] = 1.0;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::{ComplexField2d, FieldSolver, Grid2d};
    use maps_fdfd::{FdfdSolver, PmlConfig};
    use maps_linalg::Complex64;

    /// The exact FDFD solution must have (near-)zero physics loss, and a
    /// corrupted field a much larger one.
    #[test]
    fn physics_loss_vanishes_on_exact_solution() {
        let grid = Grid2d::new(40, 40, 0.1);
        let eps = maps_core::RealField2d::constant(grid, 2.0);
        let omega = maps_core::omega_for_wavelength(1.55);
        let mut j = ComplexField2d::zeros(grid);
        j.set(20, 20, Complex64::ONE);
        let pml = PmlConfig::auto(grid.dl);
        let solver = FdfdSolver::with_pml(pml);
        let ez = solver.solve_ez(&eps, &j, omega).unwrap();

        let encode = |field: &ComplexField2d| -> Tensor {
            crate::featurize::encode_target(field, crate::featurize::FieldNormalizer::identity())
        };
        let margin = pml.thickness + 2;
        let eval = |field: &ComplexField2d| -> f64 {
            let eps_t = {
                let mut t = Tensor::zeros(&[1, 1, 40, 40]);
                for iy in 0..40 {
                    for ix in 0..40 {
                        t.as_mut_slice()[iy * 40 + ix] = eps.get(ix, iy);
                    }
                }
                t
            };
            let src = source_term_tensor(&[&j], omega, 1.0);
            let mask = interior_mask(1, &eps, margin);
            // NoneTape: the physics loss is pure value code here.
            physics_residual_loss(encode(field), eps_t, src, mask, omega, grid.dl).item()
        };
        let exact_loss = eval(&ez);
        // Corrupt the field.
        let mut bad = ez.clone();
        for (k, z) in bad.as_mut_slice().iter_mut().enumerate() {
            if k % 3 == 0 {
                *z = *z * 1.3 + Complex64::new(0.01, -0.02);
            }
        }
        let bad_loss = eval(&bad);
        assert!(
            exact_loss < 1e-3 * bad_loss,
            "exact {exact_loss:.3e} should be ≪ corrupted {bad_loss:.3e}"
        );
    }

    #[test]
    fn interior_mask_margins() {
        let eps = maps_core::RealField2d::constant(Grid2d::new(8, 8, 0.1), 1.0);
        let m = interior_mask(1, &eps, 2);
        let d = m.as_slice();
        assert_eq!(d[0], 0.0); // corner
        assert_eq!(d[2 * 8 + 2], 1.0); // interior
        assert_eq!(d[7 * 8 + 7], 0.0);
    }
}
