//! Hierarchical data loading (paper §III-B feature 1).
//!
//! Samples are split at the *device* level (delegated to
//! [`maps_data::Dataset::split_by_device`]), batched deterministically, and
//! optionally augmented with superposition mixup: for a **linear** system
//! `A(ε)·e = b`, any linear combination of sources of the *same* structure
//! yields the matching combination of fields — free, physically exact
//! augmentation.

use crate::featurize::{encode_sample, stack_batch, FieldNormalizer};
use maps_core::{ComplexField2d, Sample};
use maps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batches of encoded `(input, target)` tensors plus the raw physics
/// context needed by the Maxwell-residual loss.
#[derive(Debug, Clone)]
pub struct Batch {
    /// `[N, C, H, W]` model input.
    pub input: Tensor,
    /// `[N, 2, H, W]` field target.
    pub target: Tensor,
    /// `[N, 1, H, W]` raw relative permittivity.
    pub eps: Tensor,
    /// Raw complex source of each sample.
    pub sources: Vec<ComplexField2d>,
    /// Angular frequency of each sample.
    pub omegas: Vec<f64>,
}

/// Configuration of the loader.
#[derive(Debug, Clone)]
pub struct LoaderConfig {
    /// Batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Encode the NeurOLight wave prior.
    pub wave_prior: bool,
    /// Number of extra mixup samples to synthesize (0 disables).
    pub mixup: usize,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig {
            batch_size: 4,
            seed: 17,
            wave_prior: false,
            mixup: 0,
        }
    }
}

/// Builds shuffled batches from samples.
pub fn make_batches(
    samples: &[Sample],
    normalizer: FieldNormalizer,
    config: &LoaderConfig,
) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let enriched = |s: &Sample| -> (Tensor, Tensor, Tensor, ComplexField2d, f64) {
        let (i, t) = encode_sample(s, config.wave_prior, normalizer);
        let grid = s.eps_r.grid();
        let mut eps = Tensor::zeros(&[1, 1, grid.ny, grid.nx]);
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                eps.as_mut_slice()[iy * grid.nx + ix] = s.eps_r.get(ix, iy);
            }
        }
        let omega = maps_core::omega_for_wavelength(s.labels.wavelength);
        (i, t, eps, s.source.clone(), omega)
    };
    let mut encoded: Vec<(Tensor, Tensor, Tensor, ComplexField2d, f64)> =
        samples.iter().map(enriched).collect();
    // Superposition mixup over same-structure sample pairs.
    for m in mixup_samples(samples, config.mixup, &mut rng) {
        encoded.push(enriched(&m));
    }
    // Shuffle.
    for i in (1..encoded.len()).rev() {
        let j = rng.gen_range(0..=i);
        encoded.swap(i, j);
    }
    encoded
        .chunks(config.batch_size)
        .map(|chunk| {
            let inputs: Vec<Tensor> = chunk.iter().map(|e| e.0.clone()).collect();
            let targets: Vec<Tensor> = chunk.iter().map(|e| e.1.clone()).collect();
            let eps: Vec<Tensor> = chunk.iter().map(|e| e.2.clone()).collect();
            Batch {
                input: stack_batch(&inputs),
                target: stack_batch(&targets),
                eps: stack_batch(&eps),
                sources: chunk.iter().map(|e| e.3.clone()).collect(),
                omegas: chunk.iter().map(|e| e.4).collect(),
            }
        })
        .collect()
}

/// Synthesizes mixup samples from pairs sharing the same permittivity map
/// (different ports/modes of the same structure). Returns fewer than
/// `count` when no valid pair exists.
pub fn mixup_samples(samples: &[Sample], count: usize, rng: &mut StdRng) -> Vec<Sample> {
    if count == 0 {
        return Vec::new();
    }
    // Group indices by identical permittivity.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    'outer: for (i, s) in samples.iter().enumerate() {
        for g in groups.iter_mut() {
            if samples[g[0]].eps_r == s.eps_r {
                g.push(i);
                continue 'outer;
            }
        }
        groups.push(vec![i]);
    }
    let pairs: Vec<(usize, usize)> = groups
        .iter()
        .filter(|g| g.len() >= 2)
        .flat_map(|g| (0..g.len()).flat_map(move |a| ((a + 1)..g.len()).map(move |b| (g[a], g[b]))))
        .collect();
    if pairs.is_empty() {
        return Vec::new();
    }
    (0..count)
        .map(|_| {
            let (a, b) = pairs[rng.gen_range(0..pairs.len())];
            let alpha: f64 = rng.gen_range(0.2..0.8);
            superpose(&samples[a], &samples[b], alpha, 1.0 - alpha)
        })
        .collect()
}

/// Exact superposition of two same-structure samples:
/// `J = ca·J_a + cb·J_b`, `E = ca·E_a + cb·E_b`.
///
/// # Panics
///
/// Panics if the permittivity maps differ (superposition would be invalid).
pub fn superpose(a: &Sample, b: &Sample, ca: f64, cb: f64) -> Sample {
    assert_eq!(
        a.eps_r, b.eps_r,
        "superposition requires identical structures"
    );
    let mix = |fa: &ComplexField2d, fb: &ComplexField2d| -> ComplexField2d {
        ComplexField2d::from_vec(
            fa.grid(),
            fa.as_slice()
                .iter()
                .zip(fb.as_slice())
                .map(|(x, y)| *x * ca + *y * cb)
                .collect(),
        )
    };
    let mut out = a.clone();
    out.source = mix(&a.source, &b.source);
    out.labels.fields.ez = mix(&a.labels.fields.ez, &b.labels.fields.ez);
    out.labels.fields.hx = mix(&a.labels.fields.hx, &b.labels.fields.hx);
    out.labels.fields.hy = mix(&a.labels.fields.hy, &b.labels.fields.hy);
    // Scalar power labels are no longer meaningful for a mixture.
    out.labels.transmissions.clear();
    out.labels.adjoint_gradient = None;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::{EmFields, Fidelity, Grid2d, RealField2d, RichLabels};
    use maps_linalg::Complex64;

    fn sample_with(eps_val: f64, src_val: f64) -> Sample {
        let g = Grid2d::new(4, 4, 0.1);
        let mut src = ComplexField2d::zeros(g);
        src.set(1, 1, Complex64::from_re(src_val));
        let mut ez = ComplexField2d::zeros(g);
        ez.set(2, 2, Complex64::from_re(src_val * 2.0));
        Sample {
            device_id: format!("d{eps_val}"),
            device_kind: "bending".into(),
            eps_r: RealField2d::constant(g, eps_val),
            density: None,
            source: src,
            labels: RichLabels {
                fidelity: Fidelity::High,
                wavelength: 1.55,
                input_port: 0,
                input_mode: 0,
                transmissions: vec![],
                reflection: 0.0,
                radiation: 0.0,
                fields: EmFields {
                    ez,
                    hx: ComplexField2d::zeros(g),
                    hy: ComplexField2d::zeros(g),
                },
                adjoint_gradient: None,
                maxwell_residual: 0.0,
            },
        }
    }

    #[test]
    fn batches_cover_all_samples() {
        let samples: Vec<Sample> = (0..7).map(|k| sample_with(k as f64 + 1.0, 1.0)).collect();
        let batches = make_batches(
            &samples,
            FieldNormalizer::identity(),
            &LoaderConfig {
                batch_size: 3,
                ..Default::default()
            },
        );
        let total: usize = batches.iter().map(|b| b.input.shape()[0]).sum();
        assert_eq!(total, 7);
        assert_eq!(batches.len(), 3); // 3 + 3 + 1
    }

    #[test]
    fn superposition_is_linear() {
        let a = sample_with(2.0, 1.0);
        let b = sample_with(2.0, 3.0);
        let m = superpose(&a, &b, 0.5, 0.5);
        assert_eq!(m.source.get(1, 1), Complex64::from_re(2.0));
        assert_eq!(m.labels.fields.ez.get(2, 2), Complex64::from_re(4.0));
    }

    #[test]
    #[should_panic(expected = "identical structures")]
    fn superposition_rejects_different_structures() {
        let a = sample_with(2.0, 1.0);
        let b = sample_with(3.0, 1.0);
        superpose(&a, &b, 0.5, 0.5);
    }

    #[test]
    fn mixup_only_pairs_same_structure() {
        let samples = vec![
            sample_with(2.0, 1.0),
            sample_with(2.0, 3.0),
            sample_with(5.0, 1.0),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let mixed = mixup_samples(&samples, 4, &mut rng);
        assert_eq!(mixed.len(), 4);
        for m in &mixed {
            assert_eq!(m.eps_r, samples[0].eps_r);
        }
        // No pair available → no mixup.
        let lonely = vec![sample_with(2.0, 1.0), sample_with(5.0, 1.0)];
        assert!(mixup_samples(&lonely, 3, &mut rng).is_empty());
    }
}
