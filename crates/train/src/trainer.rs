//! The training loop for field-prediction models.

use crate::featurize::{encode_sample, FieldNormalizer};
use crate::loader::{make_batches, LoaderConfig};
use crate::loss::{interior_mask, physics_residual_loss, source_term_tensor, LossKind};
use crate::metrics::{mean, n_l2norm};
use maps_core::{RealField2d, Sample};
use maps_nn::{Adam, LrSchedule, Model};
use maps_tensor::{Params, Tensor};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Loader (batching / augmentation) settings.
    pub loader: LoaderConfig,
    /// Loss composition.
    pub loss: LossKind,
    /// Boundary margin (cells) excluded from the physics residual.
    pub physics_margin: usize,
    /// Learning-rate schedule applied per epoch.
    pub schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            learning_rate: 2e-3,
            loader: LoaderConfig::default(),
            loss: LossKind::Nmse,
            physics_margin: 12,
            schedule: LrSchedule::Constant,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub loss: f64,
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Loss trajectory.
    pub epochs: Vec<EpochRecord>,
    /// Per-epoch validation N-L2norm trajectory; empty unless the run went
    /// through [`train_field_model_validated`] with a non-empty val set.
    pub val_epochs: Vec<EpochRecord>,
    /// Field normalizer fitted on the training set (needed at inference).
    pub normalizer: FieldNormalizer,
    /// Batches whose loss was NaN/∞ and were skipped without an optimizer
    /// step (a corrupted batch must not poison the model weights).
    pub skipped_batches: usize,
}

impl TrainReport {
    /// Final epoch loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |e| e.loss)
    }

    /// Final validation N-L2norm, when validation ran.
    pub fn final_val(&self) -> Option<f64> {
        self.val_epochs.last().map(|e| e.loss)
    }
}

/// Trains a field model on labeled samples.
pub fn train_field_model(
    model: &dyn Model,
    params: &mut Params,
    samples: &[Sample],
    config: &TrainConfig,
) -> TrainReport {
    train_impl(model, params, samples, &[], config)
}

/// Like [`train_field_model`], but additionally evaluates the N-L2norm on a
/// held-out validation set after every epoch, recording the trajectory in
/// [`TrainReport::val_epochs`] and the `train.val_nl2` series.
pub fn train_field_model_validated(
    model: &dyn Model,
    params: &mut Params,
    samples: &[Sample],
    val_samples: &[Sample],
    config: &TrainConfig,
) -> TrainReport {
    train_impl(model, params, samples, val_samples, config)
}

fn train_impl(
    model: &dyn Model,
    params: &mut Params,
    samples: &[Sample],
    val_samples: &[Sample],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!samples.is_empty(), "empty training set");
    let _span = maps_obs::span("train.fit")
        .field("model", model.name())
        .field("samples", samples.len())
        .field("epochs", config.epochs);
    let normalizer = FieldNormalizer::fit(samples);
    let mut loader_cfg = config.loader.clone();
    loader_cfg.wave_prior = model.wants_wave_prior();
    let mut adam = Adam::new(config.learning_rate);
    let mut epochs = Vec::with_capacity(config.epochs);
    let mut val_epochs = Vec::new();
    let mut skipped_batches = 0usize;
    let loss_series = maps_obs::series("train.loss");
    let val_series = maps_obs::series("train.val_nl2");
    let grad_cos_series = maps_obs::series("train.grad_cosine");
    // The previous epoch's summed parameter gradient, flattened in store
    // order — compared against the current epoch's to measure how stable
    // the descent direction is across epochs.
    let mut prev_epoch_grad: Option<Vec<f64>> = None;
    for epoch in 0..config.epochs {
        let epoch_span = maps_obs::span("train.epoch").field("epoch", epoch);
        adam.lr = config.schedule.lr(config.learning_rate, epoch);
        loader_cfg.seed = config.loader.seed.wrapping_add(epoch as u64);
        let batches = make_batches(samples, normalizer, &loader_cfg);
        let mut losses = Vec::with_capacity(batches.len());
        let mut epoch_grad: Vec<f64> = Vec::new();
        for batch in &batches {
            let pred = model.forward(params, batch.input.trace());
            // Decide whether the physics term applies before building the
            // loss, so the prediction's tape branches cleanly. The term
            // needs one frequency per batch; apply it only when the batch
            // is single-frequency.
            let physics = match config.loss {
                LossKind::NmsePlusPhysics { weight } => {
                    let omega0 = batch.omegas[0];
                    batch
                        .omegas
                        .iter()
                        .all(|o| (o - omega0).abs() < 1e-12)
                        .then_some((weight, omega0))
                }
                LossKind::Nmse => None,
            };
            let loss = if let Some((weight, omega0)) = physics {
                let grid = batch.sources[0].grid();
                let eps_field = RealField2d::constant(grid, 1.0); // mask template
                                                                  // Per-sample scale: the targets were normalized by each
                                                                  // sample's peak source amplitude.
                let scaled: Vec<maps_core::ComplexField2d> = batch
                    .sources
                    .iter()
                    .map(|s| {
                        let jmax = crate::featurize::source_peak(s);
                        maps_core::ComplexField2d::from_vec(
                            s.grid(),
                            s.as_slice().iter().map(|z| *z / jmax).collect(),
                        )
                    })
                    .collect();
                let refs: Vec<&maps_core::ComplexField2d> = scaled.iter().collect();
                let src = source_term_tensor(&refs, omega0, normalizer.scale);
                let mask = interior_mask(batch.sources.len(), &eps_field, config.physics_margin);
                // Normalize the scale gap between NMSE and the raw
                // residual magnitude via `weight`.
                let phys = physics_residual_loss(
                    pred.with_empty_tape(),
                    batch.eps.clone(),
                    src,
                    mask,
                    omega0,
                    grid.dl,
                )
                .scale(weight);
                pred.nmse(batch.target.clone()).add(phys)
            } else {
                pred.nmse(batch.target.clone())
            };
            let loss_value = loss.item();
            if !loss_value.is_finite() {
                skipped_batches += 1;
                maps_obs::counter("train.batches_skipped").inc();
                maps_obs::error!(
                    "train epoch {epoch}: skipping batch with non-finite loss {loss_value}"
                );
                continue;
            }
            losses.push(loss_value);
            let grads = loss.backward();
            // Accumulate the epoch's gradient fingerprint. Parameters are
            // yielded in store order every batch, so flat concatenation is
            // a consistent coordinate system.
            let mut offset = 0;
            for (_, g) in grads.param_grads(params) {
                let s = g.as_slice();
                if epoch_grad.len() < offset + s.len() {
                    epoch_grad.resize(offset + s.len(), 0.0);
                }
                for (acc, v) in epoch_grad[offset..offset + s.len()].iter_mut().zip(s) {
                    *acc += *v;
                }
                offset += s.len();
            }
            adam.step(params, &grads);
        }
        let epoch_loss = mean(&losses);
        let elapsed = epoch_span.elapsed().as_secs_f64();
        maps_obs::counter("train.epochs").inc();
        maps_obs::gauge("train.loss").set(epoch_loss);
        maps_obs::histogram("train.epoch_seconds").record(elapsed);
        if elapsed > 0.0 {
            maps_obs::histogram("train.samples_per_sec").record(samples.len() as f64 / elapsed);
        }
        maps_obs::info!(
            "train epoch {epoch}: loss {epoch_loss:.4e} ({:.2}s, lr {:.2e})",
            elapsed,
            adam.lr
        );
        epochs.push(EpochRecord {
            epoch,
            loss: epoch_loss,
        });
        loss_series.push(epoch as u64, epoch_loss);
        if let Some(prev) = &prev_epoch_grad {
            if prev.len() == epoch_grad.len() && !epoch_grad.is_empty() {
                let sim = crate::metrics::cosine(prev, &epoch_grad);
                maps_obs::gauge("train.grad_cosine").set(sim);
                grad_cos_series.push(epoch as u64, sim);
            }
        }
        prev_epoch_grad = Some(epoch_grad);
        if !val_samples.is_empty() {
            let val_nl2 = evaluate_n_l2(model, params, val_samples, normalizer);
            maps_obs::gauge("train.val_nl2").set(val_nl2);
            val_series.push(epoch as u64, val_nl2);
            val_epochs.push(EpochRecord {
                epoch,
                loss: val_nl2,
            });
        }
    }
    TrainReport {
        epochs,
        val_epochs,
        normalizer,
        skipped_batches,
    }
}

/// Predicts the field of one sample and returns it in physical units.
///
/// Runs tape-free ([`Model::infer`]): prediction allocates no autodiff
/// state at all.
pub fn predict_field(
    model: &dyn Model,
    params: &Params,
    sample: &Sample,
    normalizer: FieldNormalizer,
) -> maps_core::ComplexField2d {
    let (input, _) = encode_sample(sample, model.wants_wave_prior(), normalizer);
    let pred = model.infer(params, input);
    // Undo the per-sample source normalization (see encode_sample).
    let per_sample = FieldNormalizer {
        scale: normalizer.scale / crate::featurize::source_peak(&sample.source),
    };
    crate::featurize::decode_field(&pred, sample.eps_r.grid(), per_sample)
}

/// Mean N-L2norm of a model over samples.
pub fn evaluate_n_l2(
    model: &dyn Model,
    params: &Params,
    samples: &[Sample],
    normalizer: FieldNormalizer,
) -> f64 {
    let vals: Vec<f64> = samples
        .iter()
        .map(|s| {
            let pred = predict_field(model, params, s, normalizer);
            n_l2norm(&pred, &s.labels.fields.ez)
        })
        .collect();
    mean(&vals)
}

/// Cheap shape check that a model accepts the encoding produced for a
/// sample set; returns the (channels, height, width) seen.
pub fn probe_encoding(model: &dyn Model, sample: &Sample) -> (usize, usize, usize) {
    let (input, _) = encode_sample(
        sample,
        model.wants_wave_prior(),
        FieldNormalizer::identity(),
    );
    let s = input.shape().to_vec();
    assert_eq!(
        s[1],
        model.in_channels(),
        "model expects {} channels, encoding has {}",
        model.in_channels(),
        s[1]
    );
    (s[1], s[2], s[3])
}

/// Convenience: an all-ones tensor shaped like a batch of `n` scalars
/// (used by black-box trainers).
pub fn scalar_targets(values: &[f64]) -> Tensor {
    Tensor::from_vec(&[values.len(), 1], values.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::{ComplexField2d, EmFields, Fidelity, Grid2d, RichLabels};
    use maps_linalg::Complex64;
    use maps_nn::{Fno, FnoConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic learnable task: the "field" is a fixed linear function of
    /// the source; a small FNO must drive the loss down.
    fn synthetic_samples(n: usize) -> Vec<Sample> {
        let g = Grid2d::new(16, 16, 0.1);
        (0..n)
            .map(|k| {
                let mut src = ComplexField2d::zeros(g);
                src.set(4 + (k % 4), 8, Complex64::ONE);
                let mut ez = ComplexField2d::zeros(g);
                for iy in 0..16 {
                    for ix in 0..16 {
                        let d = (ix as f64 - (4 + (k % 4)) as f64).abs() + (iy as f64 - 8.0).abs();
                        ez.set(
                            ix,
                            iy,
                            Complex64::new((-d * 0.3).exp(), 0.1 * (-d * 0.3).exp()),
                        );
                    }
                }
                Sample {
                    device_id: format!("dev-{k}"),
                    device_kind: "synthetic".into(),
                    eps_r: maps_core::RealField2d::constant(g, 2.0),
                    density: None,
                    source: src,
                    labels: RichLabels {
                        fidelity: Fidelity::High,
                        wavelength: 1.55,
                        input_port: 0,
                        input_mode: 0,
                        transmissions: vec![],
                        reflection: 0.0,
                        radiation: 0.0,
                        fields: EmFields {
                            ez,
                            hx: ComplexField2d::zeros(g),
                            hy: ComplexField2d::zeros(g),
                        },
                        adjoint_gradient: None,
                        maxwell_residual: 0.0,
                    },
                }
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let samples = synthetic_samples(8);
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 8,
                modes: 4,
                depth: 2,
            },
        );
        let report = train_field_model(
            &model,
            &mut params,
            &samples,
            &TrainConfig {
                epochs: 15,
                learning_rate: 8e-3,
                ..Default::default()
            },
        );
        let first = report.epochs.first().unwrap().loss;
        let last = report.final_loss();
        assert!(
            last < first * 0.7,
            "loss should drop: {first:.4} -> {last:.4}"
        );
        // And the N-L2 metric beats the trivial zero predictor (= 1.0).
        let nl2 = evaluate_n_l2(&model, &params, &samples, report.normalizer);
        assert!(nl2 < 1.0, "N-L2 {nl2}");
    }

    #[test]
    fn corrupted_batch_is_skipped_without_poisoning_weights() {
        let mut samples = synthetic_samples(8);
        // Corrupt one sample's label field with a NaN; with batch_size 1
        // exactly its batch becomes non-finite each epoch.
        samples[3]
            .labels
            .fields
            .ez
            .set(0, 0, Complex64::new(f64::NAN, 0.0));
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 8,
                modes: 4,
                depth: 2,
            },
        );
        let epochs = 5;
        let report = train_field_model(
            &model,
            &mut params,
            &samples,
            &TrainConfig {
                epochs,
                learning_rate: 8e-3,
                loader: LoaderConfig {
                    batch_size: 1,
                    ..LoaderConfig::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(report.skipped_batches, epochs, "one skip per epoch");
        // Every recorded epoch loss stayed finite and the weights were
        // never poisoned.
        for e in &report.epochs {
            assert!(e.loss.is_finite(), "epoch {} loss {}", e.epoch, e.loss);
        }
        for id in params.ids() {
            assert!(
                params.get(id).as_slice().iter().all(|v| v.is_finite()),
                "weights must stay finite"
            );
        }
        // And training still learned from the clean batches.
        let first = report.epochs.first().unwrap().loss;
        let last = report.final_loss();
        assert!(last < first, "loss should drop: {first:.4} -> {last:.4}");
    }

    #[test]
    fn probe_encoding_checks_channels() {
        let samples = synthetic_samples(1);
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 1,
            },
        );
        let (c, h, w) = probe_encoding(&model, &samples[0]);
        assert_eq!((c, h, w), (4, 16, 16));
    }
}
